//! The full transformer language model.

use crate::act::log_softmax_rows;
use crate::block::{BlockCache, DecoderBlock, EncoderBlock, TransformerBlock};
use crate::config::{ArchKind, TransformerConfig};
use crate::decode::DecodeError;
use crate::linear::{AnyLinear, AnyLinearCache};
use crate::norm::{LayerNorm, LayerNormCache, RmsNorm, RmsNormCache};
use crate::param::Param;
use lrd_tensor::rng::Rng64;
use lrd_tensor::Tensor;

/// Final normalization before the LM head (architecture-dependent).
#[derive(Debug, Clone, PartialEq)]
pub enum FinalNorm {
    /// RMSNorm (decoder/Llama).
    Rms(RmsNorm),
    /// LayerNorm (encoder/BERT).
    Layer(LayerNorm),
}

/// Cache for [`FinalNorm`].
#[derive(Debug, Clone)]
pub enum FinalNormCache {
    /// RMSNorm cache.
    Rms(RmsNormCache),
    /// LayerNorm cache.
    Layer(LayerNormCache),
}

impl FinalNorm {
    fn forward(&self, x: &Tensor) -> (Tensor, FinalNormCache) {
        match self {
            FinalNorm::Rms(n) => {
                let (y, c) = n.forward(x);
                (y, FinalNormCache::Rms(c))
            }
            FinalNorm::Layer(n) => {
                let (y, c) = n.forward(x);
                (y, FinalNormCache::Layer(c))
            }
        }
    }

    fn infer(&self, x: &Tensor) -> Tensor {
        match self {
            FinalNorm::Rms(n) => n.infer(x),
            FinalNorm::Layer(n) => n.infer(x),
        }
    }

    fn backward(&mut self, cache: &FinalNormCache, dy: &Tensor) -> Tensor {
        match (self, cache) {
            (FinalNorm::Rms(n), FinalNormCache::Rms(c)) => n.backward(c, dy),
            (FinalNorm::Layer(n), FinalNormCache::Layer(c)) => n.backward(c, dy),
            // lrd-lint: allow(no-panic, "pairing a cache with the wrong norm variant is an internal bug; no recovery is meaningful")
            _ => panic!("FinalNorm::backward: cache variant mismatch"),
        }
    }

    fn visit_params<'a>(&'a mut self, prefix: &str, out: &mut Vec<(String, &'a mut Param)>) {
        match self {
            FinalNorm::Rms(n) => n.visit_params(prefix, out),
            FinalNorm::Layer(n) => n.visit_params(prefix, out),
        }
    }

    fn param_count(&self) -> usize {
        match self {
            FinalNorm::Rms(n) => n.param_count(),
            FinalNorm::Layer(n) => n.param_count(),
        }
    }
}

/// A decoder-only (Llama-style) or encoder (BERT-style) language model with
/// token embeddings, `n_layers` transformer blocks, a final norm and an LM
/// head.
///
/// # Example
///
/// ```
/// use lrd_nn::{TransformerConfig, TransformerLm};
/// use lrd_tensor::rng::Rng64;
///
/// let mut cfg = TransformerConfig::tiny_llama();
/// cfg.n_layers = 2; // keep the doctest fast
/// let mut rng = Rng64::new(1);
/// let model = TransformerLm::new(cfg, &mut rng);
/// let logits = model.logits(&[1, 2, 3], 1);
/// assert_eq!(logits.dims(), &[3, model.config().vocab_size]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TransformerLm {
    cfg: TransformerConfig,
    /// Token embedding table, `vocab × d`.
    pub tok_embed: Param,
    /// Learned positional embeddings (encoder only), `max_seq × d`.
    pub pos_embed: Option<Param>,
    /// Transformer blocks.
    pub blocks: Vec<TransformerBlock>,
    /// Final normalization.
    pub final_norm: FinalNorm,
    /// LM head, `d × vocab`.
    pub lm_head: AnyLinear,
}

/// Incremental decoding state (KV caches + position) for
/// [`TransformerLm::decode_step`] — one per in-flight serving session.
///
/// Created by [`TransformerLm::new_decode_state`], which preallocates
/// every layer's KV cache at its full `max_seq` capacity, so a session's
/// memory footprint is fixed at admission and decoding never reallocates.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeState {
    caches: Vec<crate::attention::KvCache>,
    pos: usize,
}

impl DecodeState {
    /// Number of tokens already consumed.
    pub fn len(&self) -> usize {
        self.pos
    }

    /// Whether no tokens have been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos == 0
    }
}

/// Cached forward state for [`TransformerLm::forward`].
#[derive(Debug, Clone)]
pub struct ModelCache {
    tokens: Vec<usize>,
    batch: usize,
    seq: usize,
    block_caches: Vec<BlockCache>,
    norm_cache: FinalNormCache,
    head_cache: AnyLinearCache,
}

impl TransformerLm {
    /// Creates a randomly initialized model.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`TransformerConfig::validate`]).
    pub fn new(cfg: TransformerConfig, rng: &mut Rng64) -> Self {
        cfg.validate();
        let std = 0.02f32.max((1.0 / cfg.d_model as f32).sqrt() * 0.5);
        let tok_embed = Param::randn(&[cfg.vocab_size, cfg.d_model], std, rng);
        let pos_embed = matches!(cfg.kind, ArchKind::Encoder)
            .then(|| Param::randn(&[cfg.max_seq, cfg.d_model], std, rng));
        let blocks = (0..cfg.n_layers)
            .map(|_| match cfg.kind {
                ArchKind::Decoder => TransformerBlock::Decoder(DecoderBlock::new(&cfg, rng)),
                ArchKind::Encoder => TransformerBlock::Encoder(EncoderBlock::new(&cfg, rng)),
            })
            .collect();
        let final_norm = match cfg.kind {
            ArchKind::Decoder => FinalNorm::Rms(RmsNorm::new(cfg.d_model)),
            ArchKind::Encoder => FinalNorm::Layer(LayerNorm::new(cfg.d_model)),
        };
        let lm_head = AnyLinear::dense(cfg.d_model, cfg.vocab_size, false, rng);
        TransformerLm {
            cfg,
            tok_embed,
            pos_embed,
            blocks,
            final_norm,
            lm_head,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &TransformerConfig {
        &self.cfg
    }

    /// Total number of parameters.
    pub fn param_count(&self) -> usize {
        self.tok_embed.len()
            + self.pos_embed.as_ref().map_or(0, Param::len)
            + self
                .blocks
                .iter()
                .map(TransformerBlock::param_count)
                .sum::<usize>()
            + self.final_norm.param_count()
            + self.lm_head.param_count()
    }

    /// Embeds a flat, batch-major token slice into `(B·T) × d` activations.
    fn embed(&self, tokens: &[usize], batch: usize, seq: usize) -> Tensor {
        assert_eq!(tokens.len(), batch * seq, "token count != batch*seq");
        let d = self.cfg.d_model;
        let mut x = Tensor::zeros(&[batch * seq, d]);
        for (i, &t) in tokens.iter().enumerate() {
            assert!(t < self.cfg.vocab_size, "token id {t} out of range");
            x.row_mut(i).copy_from_slice(self.tok_embed.value.row(t));
            if let Some(pe) = &self.pos_embed {
                let pos = i % seq;
                for (a, &b) in x.row_mut(i).iter_mut().zip(pe.value.row(pos)) {
                    *a += b;
                }
            }
        }
        x
    }

    /// Full forward pass returning logits `(B·T) × vocab` and the backward
    /// cache.
    ///
    /// # Panics
    ///
    /// Panics if `tokens.len() != batch·seq`, `seq > max_seq`, or a token id
    /// is out of range.
    pub fn forward(&self, tokens: &[usize], batch: usize) -> (Tensor, ModelCache) {
        let seq = tokens.len() / batch.max(1);
        assert!(
            seq <= self.cfg.max_seq,
            "sequence length {seq} exceeds max_seq"
        );
        let mut x = self.embed(tokens, batch, seq);
        let mut block_caches = Vec::with_capacity(self.blocks.len());
        for block in &self.blocks {
            let (y, c) = block.forward(&x, batch, seq);
            x = y;
            block_caches.push(c);
        }
        let (nx, norm_cache) = self.final_norm.forward(&x);
        let (logits, head_cache) = self.lm_head.forward(&nx);
        (
            logits,
            ModelCache {
                tokens: tokens.to_vec(),
                batch,
                seq,
                block_caches,
                norm_cache,
                head_cache,
            },
        )
    }

    /// Inference-only logits: the whole stack takes its no-cache path, so
    /// evaluation allocates no backward state at all.
    ///
    /// # Panics
    ///
    /// Panics if `tokens.len() != batch·seq`, `seq > max_seq`, or a token id
    /// is out of range.
    pub fn logits(&self, tokens: &[usize], batch: usize) -> Tensor {
        let seq = tokens.len() / batch.max(1);
        assert!(
            seq <= self.cfg.max_seq,
            "sequence length {seq} exceeds max_seq"
        );
        let mut x = self.embed(tokens, batch, seq);
        for block in &self.blocks {
            x = block.infer(&x, batch, seq);
        }
        let nx = self.final_norm.infer(&x);
        self.lm_head.infer(&nx)
    }

    /// Backward pass from `dlogits`; accumulates gradients into every
    /// parameter.
    pub fn backward(&mut self, cache: &ModelCache, dlogits: &Tensor) {
        let dnx = self.lm_head.backward(&cache.head_cache, dlogits);
        let mut dx = self.final_norm.backward(&cache.norm_cache, &dnx);
        for (block, bc) in self.blocks.iter_mut().zip(&cache.block_caches).rev() {
            dx = block.backward(bc, &dx);
        }
        // Embedding gradients.
        for (i, &t) in cache.tokens.iter().enumerate() {
            let gr = dx.row(i).to_vec();
            let erow = self.tok_embed.grad.row_mut(t);
            for (a, &b) in erow.iter_mut().zip(&gr) {
                *a += b;
            }
            if let Some(pe) = &mut self.pos_embed {
                let pos = i % cache.seq;
                let prow = pe.grad.row_mut(pos);
                for (a, &b) in prow.iter_mut().zip(&gr) {
                    *a += b;
                }
            }
        }
        let _ = cache.batch;
    }

    /// Sum of log-probabilities of `continuation` given `prefix`
    /// (decoder-only scoring, exactly the quantity the lm-eval-style harness
    /// uses for multiple-choice benchmarks). Also returns the number of
    /// scored tokens, for length normalization.
    ///
    /// # Panics
    ///
    /// Panics if `continuation` is empty or the combined length exceeds
    /// `max_seq`.
    pub fn score_continuation(&self, prefix: &[usize], continuation: &[usize]) -> (f32, usize) {
        assert!(!continuation.is_empty(), "empty continuation");
        let mut tokens = prefix.to_vec();
        tokens.extend_from_slice(continuation);
        let logits = self.logits(&tokens, 1);
        let logp = log_softmax_rows(&logits);
        let mut sum = 0.0f32;
        // Token at position i+1 is predicted from position i.
        let start = prefix.len().max(1) - 1;
        for i in start..tokens.len() - 1 {
            sum += logp.get(&[i, tokens[i + 1]]);
        }
        // When the prefix is empty the first continuation token has no
        // conditioning position and is skipped.
        let scored = tokens.len() - 1 - start;
        (sum, scored)
    }

    /// Incremental decoding state: one KV cache per decoder layer plus the
    /// running position. Every cache's full `max_seq` capacity is reserved
    /// here, so the session's memory footprint is fixed at creation.
    pub fn new_decode_state(&self) -> DecodeState {
        let head_dim = self.cfg.d_model / self.cfg.n_heads;
        let width = self.cfg.n_kv_heads * head_dim;
        DecodeState {
            caches: (0..self.cfg.n_layers)
                .map(|_| crate::attention::KvCache::with_bounds(self.cfg.max_seq, width))
                .collect(),
            pos: 0,
        }
    }

    /// Feeds one token through the model incrementally (decoder only),
    /// returning the next-token logits (`1 × vocab`).
    ///
    /// # Errors
    ///
    /// See [`TransformerLm::decode_step_many`]; the state is unchanged on
    /// error.
    pub fn decode_step(
        &self,
        token: usize,
        state: &mut DecodeState,
    ) -> Result<Tensor, DecodeError> {
        self.decode_step_many(&[token], &mut [state])
    }

    /// Continuous-batching decode: advances `S` independent sessions by one
    /// token each, returning the `S × vocab` next-token logits (row `i`
    /// for session `i`). Each layer runs its projections, MLP and norms as
    /// single `S`-row batches — one batched GEMM per weight per layer per
    /// step — while attention reads each session's own KV cache, so the
    /// logits for every session are bit-identical to decoding it alone
    /// with [`TransformerLm::decode_step`] (see DESIGN.md §13 for the
    /// determinism argument).
    ///
    /// # Errors
    ///
    /// [`DecodeError::NotDecoder`] on encoder models,
    /// [`DecodeError::BatchMismatch`] if `tokens`/`states` disagree or are
    /// empty, [`DecodeError::TokenOutOfRange`] for an invalid token id,
    /// [`DecodeError::CacheFull`] if a session is at `max_seq`. All
    /// sessions are validated before any state is advanced, so every
    /// session is unchanged on error.
    pub fn decode_step_many(
        &self,
        tokens: &[usize],
        states: &mut [&mut DecodeState],
    ) -> Result<Tensor, DecodeError> {
        if !matches!(self.cfg.kind, ArchKind::Decoder) {
            return Err(DecodeError::NotDecoder);
        }
        if tokens.is_empty() || tokens.len() != states.len() {
            return Err(DecodeError::BatchMismatch {
                what: "states",
                expected: tokens.len().max(1),
                got: states.len(),
            });
        }
        for &t in tokens {
            if t >= self.cfg.vocab_size {
                return Err(DecodeError::TokenOutOfRange {
                    token: t,
                    vocab: self.cfg.vocab_size,
                });
            }
        }
        for state in states.iter() {
            if state.pos >= self.cfg.max_seq {
                return Err(DecodeError::CacheFull {
                    max_seq: self.cfg.max_seq,
                });
            }
        }
        let positions: Vec<usize> = states.iter().map(|s| s.pos).collect();
        let mut x = self.tok_embed.value.gather_rows(tokens);
        for (l, block) in self.blocks.iter().enumerate() {
            match block {
                TransformerBlock::Decoder(b) => {
                    let mut layer_caches: Vec<&mut crate::attention::KvCache> =
                        states.iter_mut().map(|s| &mut s.caches[l]).collect();
                    x = b.decode_step_many(&x, &positions, &mut layer_caches)?;
                }
                TransformerBlock::Encoder(_) => return Err(DecodeError::NotDecoder),
            }
        }
        for state in states.iter_mut() {
            state.pos += 1;
        }
        let nx = self.final_norm.infer(&x);
        Ok(self.lm_head.infer(&nx))
    }

    /// Greedy generation using the KV cache: O(context) work per new token
    /// instead of O(context²) full recomputes. Produces exactly the same
    /// tokens as [`TransformerLm::generate_greedy`].
    ///
    /// # Errors
    ///
    /// Propagates [`TransformerLm::decode_step`] failures (encoder model,
    /// out-of-range prompt token).
    pub fn generate_greedy_cached(
        &self,
        prompt: &[usize],
        max_new: usize,
        stop_token: Option<usize>,
    ) -> Result<Vec<usize>, DecodeError> {
        let mut state = self.new_decode_state();
        let mut logits = Tensor::zeros(&[1, self.cfg.vocab_size]);
        for &t in prompt {
            logits = self.decode_step(t, &mut state)?;
        }
        let mut out = Vec::new();
        for _ in 0..max_new {
            if state.pos >= self.cfg.max_seq {
                break;
            }
            let row = logits.row(0);
            let next = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0);
            out.push(next);
            if Some(next) == stop_token {
                break;
            }
            if out.len() < max_new && state.pos < self.cfg.max_seq {
                logits = self.decode_step(next, &mut state)?;
            }
        }
        Ok(out)
    }

    /// Greedy (argmax) generation of up to `max_new` tokens, stopping early
    /// if `stop_token` is produced.
    pub fn generate_greedy(
        &self,
        prompt: &[usize],
        max_new: usize,
        stop_token: Option<usize>,
    ) -> Vec<usize> {
        let mut tokens = prompt.to_vec();
        for _ in 0..max_new {
            if tokens.len() >= self.cfg.max_seq {
                break;
            }
            let logits = self.logits(&tokens, 1);
            let last = logits.row(logits.rows() - 1);
            let next = last
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0);
            tokens.push(next);
            if Some(next) == stop_token {
                break;
            }
        }
        tokens[prompt.len()..].to_vec()
    }

    /// Visits every parameter as `(name, param)` pairs (optimizer and
    /// checkpoint hook).
    pub fn visit_params(&mut self) -> Vec<(String, &mut Param)> {
        let mut out = Vec::new();
        out.push(("tok_embed".to_string(), &mut self.tok_embed));
        if let Some(pe) = &mut self.pos_embed {
            out.push(("pos_embed".to_string(), pe));
        }
        for (i, b) in self.blocks.iter_mut().enumerate() {
            b.visit_params(&format!("blocks.{i}"), &mut out);
        }
        self.final_norm.visit_params("final_norm", &mut out);
        self.lm_head.visit_params("lm_head", &mut out);
        out
    }

    /// Visits every decomposable weight tensor as
    /// `(layer_index, tensor_name, slot)` — the decomposer hook. Tensor
    /// names per layer follow the paper's Fig. 4 ordering.
    pub fn visit_linears(&mut self) -> Vec<(usize, &'static str, &mut AnyLinear)> {
        let mut out = Vec::new();
        for (i, b) in self.blocks.iter_mut().enumerate() {
            let mut slots = Vec::new();
            b.visit_linears(&mut slots);
            for (name, slot) in slots {
                out.push((i, name, slot));
            }
        }
        out
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for (_, p) in self.visit_params() {
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::act::cross_entropy;

    fn tiny(kind: ArchKind, n_layers: usize) -> TransformerLm {
        let cfg = TransformerConfig {
            kind,
            vocab_size: 16,
            d_model: 8,
            n_layers,
            n_heads: 2,
            n_kv_heads: 2,
            d_ff: 16,
            max_seq: 12,
        };
        let mut rng = Rng64::new(42);
        TransformerLm::new(cfg, &mut rng)
    }

    #[test]
    fn forward_shapes() {
        let m = tiny(ArchKind::Decoder, 2);
        let logits = m.logits(&[1, 2, 3, 4], 1);
        assert_eq!(logits.dims(), &[4, 16]);
        let logits = m.logits(&[1, 2, 3, 4, 5, 6], 2);
        assert_eq!(logits.dims(), &[6, 16]);
    }

    #[test]
    fn infer_logits_match_training_forward() {
        // The no-cache inference path must agree with forward() exactly for
        // both architectures.
        for kind in [ArchKind::Decoder, ArchKind::Encoder] {
            let m = tiny(kind, 2);
            let tokens = [1usize, 2, 3, 4, 5, 6];
            let (train, _) = m.forward(&tokens, 2);
            let infer = m.logits(&tokens, 2);
            assert_eq!(train, infer, "{kind:?} infer path diverged");
        }
    }

    #[test]
    fn encoder_forward_shapes() {
        let m = tiny(ArchKind::Encoder, 2);
        let logits = m.logits(&[0, 1, 2], 1);
        assert_eq!(logits.dims(), &[3, 16]);
        assert!(m.pos_embed.is_some());
    }

    #[test]
    fn backward_populates_all_grads() {
        let mut m = tiny(ArchKind::Decoder, 2);
        let tokens = [1usize, 2, 3, 4];
        let (logits, cache) = m.forward(&tokens, 1);
        let (_, dlogits) = cross_entropy(&logits, &[2, 3, 4, 5]);
        m.backward(&cache, &dlogits);
        let nonzero = m
            .visit_params()
            .iter()
            .filter(|(_, p)| p.grad_norm() > 0.0)
            .count();
        let total = m.visit_params().len();
        // Every parameter that participates should receive gradient; unused
        // embedding rows keep the tok_embed grad nonzero overall anyway.
        assert!(
            nonzero as f32 / total as f32 > 0.95,
            "{nonzero}/{total} grads nonzero"
        );
    }

    #[test]
    fn model_grad_matches_finite_difference() {
        let mut m = tiny(ArchKind::Decoder, 1);
        let tokens = [3usize, 1, 4];
        let targets = [1usize, 4, 2];
        let (logits, cache) = m.forward(&tokens, 1);
        let (_, dlogits) = cross_entropy(&logits, &targets);
        m.backward(&cache, &dlogits);
        // Check several parameters across modules against finite differences.
        let loss_of = |model: &TransformerLm| -> f32 {
            let lg = model.logits(&tokens, 1);
            cross_entropy(&lg, &targets).0
        };
        let h = 1e-2;
        let names_grads: Vec<(String, Vec<f32>)> = {
            let mut mm = m.clone();
            mm.visit_params()
                .into_iter()
                .map(|(n, p)| (n, p.grad.data().to_vec()))
                .collect()
        };
        for (pi, (name, grads)) in names_grads.iter().enumerate().step_by(5) {
            let idx = grads.len() / 2;
            let mut mp = m.clone();
            mp.visit_params()[pi].1.value.data_mut()[idx] += h;
            let mut mmn = m.clone();
            mmn.visit_params()[pi].1.value.data_mut()[idx] -= h;
            let fd = (loss_of(&mp) - loss_of(&mmn)) / (2.0 * h);
            assert!(
                (grads[idx] - fd).abs() < 5e-2,
                "param {name}[{idx}]: {} vs {fd}",
                grads[idx]
            );
        }
    }

    #[test]
    fn score_continuation_prefers_trained_pattern() {
        // An untrained model gives roughly uniform scores; check bookkeeping.
        let m = tiny(ArchKind::Decoder, 2);
        let (lp, n) = m.score_continuation(&[1, 2], &[3, 4]);
        assert_eq!(n, 2);
        assert!(lp < 0.0);
        // Scoring with an empty prefix skips the unconditioned first token.
        let (_, n2) = m.score_continuation(&[], &[3, 4, 5]);
        assert_eq!(n2, 2);
    }

    #[test]
    fn generate_greedy_is_deterministic_and_bounded() {
        let m = tiny(ArchKind::Decoder, 2);
        let g1 = m.generate_greedy(&[1, 2, 3], 4, None);
        let g2 = m.generate_greedy(&[1, 2, 3], 4, None);
        assert_eq!(g1, g2);
        assert!(g1.len() <= 4);
        // Stops at max_seq.
        let g3 = m.generate_greedy(&[1; 10], 100, None);
        assert!(g3.len() <= 2);
    }

    #[test]
    fn cached_generation_matches_full_recompute() {
        let m = tiny(ArchKind::Decoder, 3);
        for prompt in [vec![1usize, 2, 3], vec![7, 7], vec![4, 9, 2, 11]] {
            let full = m.generate_greedy(&prompt, 5, None);
            let cached = m.generate_greedy_cached(&prompt, 5, None).unwrap();
            assert_eq!(full, cached, "prompt {prompt:?}");
        }
    }

    #[test]
    fn decode_step_logits_match_full_forward() {
        let m = tiny(ArchKind::Decoder, 2);
        let tokens = [3usize, 1, 4, 1, 5];
        let full = m.logits(&tokens, 1);
        let mut state = m.new_decode_state();
        let mut last = Tensor::zeros(&[1, 16]);
        for &t in &tokens {
            last = m.decode_step(t, &mut state).unwrap();
        }
        assert_eq!(state.len(), 5);
        let diff: f32 = (0..16)
            .map(|j| (full.get(&[4, j]) - last.get(&[0, j])).abs())
            .fold(0.0, f32::max);
        assert!(diff < 1e-4, "cached vs full logits diverge by {diff}");
    }

    #[test]
    fn decode_step_rejects_encoder() {
        let m = tiny(ArchKind::Encoder, 1);
        let mut state = m.new_decode_state();
        assert_eq!(
            m.decode_step(1, &mut state),
            Err(DecodeError::NotDecoder),
            "encoder models must be rejected with a typed error"
        );
        assert_eq!(state.len(), 0, "state must be unchanged on error");
    }

    #[test]
    fn decode_step_rejects_bad_token_and_overflow() {
        let m = tiny(ArchKind::Decoder, 1);
        let mut state = m.new_decode_state();
        assert_eq!(
            m.decode_step(99, &mut state),
            Err(DecodeError::TokenOutOfRange {
                token: 99,
                vocab: 16
            })
        );
        assert_eq!(state.len(), 0, "state must be unchanged on error");
        // Fill to max_seq (12), then the next step must fail cleanly.
        for i in 0..12 {
            m.decode_step(i % 16, &mut state).unwrap();
        }
        assert_eq!(
            m.decode_step(1, &mut state),
            Err(DecodeError::CacheFull { max_seq: 12 })
        );
        assert_eq!(state.len(), 12, "state must be unchanged on error");
    }

    #[test]
    fn decode_step_many_is_bit_identical_to_sequential() {
        // Three sessions at staggered positions, advanced together: every
        // logits row must equal the row a lone batch-1 session produces.
        let m = tiny(ArchKind::Decoder, 2);
        let prompts: [&[usize]; 3] = [&[3, 1, 4, 1], &[7, 7], &[9, 2, 6, 5, 3]];
        let mut seq_states: Vec<DecodeState> = Vec::new();
        let mut seq_logits: Vec<Tensor> = Vec::new();
        for prompt in prompts {
            let mut st = m.new_decode_state();
            let mut last = Tensor::zeros(&[1, 16]);
            for &t in prompt {
                last = m.decode_step(t, &mut st).unwrap();
            }
            seq_states.push(st);
            seq_logits.push(last);
        }
        // Replay the same prompts through the batched path, joining each
        // session only while it still has prompt tokens left.
        let mut bat_states: Vec<DecodeState> =
            (0..prompts.len()).map(|_| m.new_decode_state()).collect();
        let max_len = prompts.iter().map(|p| p.len()).max().unwrap();
        let mut last_rows: Vec<Vec<f32>> = vec![Vec::new(); prompts.len()];
        for step in 0..max_len {
            let mut tokens = Vec::new();
            let mut idxs = Vec::new();
            for (i, prompt) in prompts.iter().enumerate() {
                if step < prompt.len() {
                    tokens.push(prompt[step]);
                    idxs.push(i);
                }
            }
            let mut refs: Vec<&mut DecodeState> = bat_states
                .iter_mut()
                .enumerate()
                .filter(|(i, _)| step < prompts[*i].len())
                .map(|(_, s)| s)
                .collect();
            let logits = m.decode_step_many(&tokens, &mut refs).unwrap();
            for (row, &i) in idxs.iter().enumerate() {
                last_rows[i] = logits.row(row).to_vec();
            }
        }
        for i in 0..prompts.len() {
            assert_eq!(bat_states[i], seq_states[i], "session {i} state diverged");
            assert_eq!(
                last_rows[i],
                seq_logits[i].row(0).to_vec(),
                "session {i} logits diverged"
            );
        }
    }

    #[test]
    fn visit_linears_exposes_layer_indices() {
        let mut m = tiny(ArchKind::Decoder, 3);
        let slots = m.visit_linears();
        assert_eq!(slots.len(), 3 * 7);
        assert_eq!(slots[0].0, 0);
        assert_eq!(slots[7].0, 1);
        assert_eq!(slots[14].0, 2);
    }

    #[test]
    fn param_count_matches_visit() {
        let mut m = tiny(ArchKind::Encoder, 2);
        let expected = m.param_count();
        let total: usize = m.visit_params().iter().map(|(_, p)| p.len()).sum();
        assert_eq!(total, expected);
    }
}
