//! Multi-head self-attention with manual backpropagation.
//!
//! Supports causal (decoder) and bidirectional (encoder) masking, grouped-
//! query attention, and rotary position embeddings. The four projection
//! weights `W_Q`, `W_K`, `W_V`, `W_SO` are the attention-side decomposable
//! tensors of the paper (Fig. 4) and are held in [`AnyLinear`] slots so the
//! decomposer can factor them in place.

use crate::act::{softmax_rows, softmax_rows_backward};
use crate::decode::DecodeError;
use crate::linear::{AnyLinear, AnyLinearCache};
use crate::param::Param;
use crate::rope::Rope;
use lrd_tensor::matmul::{matmul, matmul_transa, matmul_transb};
use lrd_tensor::rng::Rng64;
use lrd_tensor::Tensor;

/// Per-layer key/value cache for incremental decoding of one session.
///
/// Storage is a pair of flat `f32` buffers (keys post-RoPE, values) whose
/// full `max_seq · width` capacity is reserved up front, so appending a
/// token in the serving hot loop never reallocates, and a session can
/// never grow past its hard `max_seq` bound — [`KvCache::push`] returns a
/// typed error instead.
#[derive(Debug, Clone, PartialEq)]
pub struct KvCache {
    /// Cached key rows, flattened; each row is `width` wide.
    k: Vec<f32>,
    /// Cached value rows, flattened.
    v: Vec<f32>,
    /// Row width, `n_kv_heads · head_dim`.
    width: usize,
    /// Hard bound on cached positions.
    max_seq: usize,
    /// Cached positions so far.
    len: usize,
}

impl KvCache {
    /// An empty cache bounded at `max_seq` positions of `width`-wide rows,
    /// with the full capacity reserved immediately.
    pub fn with_bounds(max_seq: usize, width: usize) -> Self {
        KvCache {
            k: Vec::with_capacity(max_seq * width),
            v: Vec::with_capacity(max_seq * width),
            width,
            max_seq,
            len: 0,
        }
    }

    /// Number of cached positions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The hard bound on cached positions.
    pub fn max_seq(&self) -> usize {
        self.max_seq
    }

    /// Appends one position's key/value rows.
    ///
    /// # Errors
    ///
    /// [`DecodeError::CacheFull`] at the `max_seq` bound;
    /// [`DecodeError::BatchMismatch`] if a row is not `width` wide. The
    /// cache is unchanged on error.
    pub fn push(&mut self, k: &[f32], v: &[f32]) -> Result<(), DecodeError> {
        if self.len >= self.max_seq {
            return Err(DecodeError::CacheFull {
                max_seq: self.max_seq,
            });
        }
        for row in [k, v] {
            if row.len() != self.width {
                return Err(DecodeError::BatchMismatch {
                    what: "kv row width",
                    expected: self.width,
                    got: row.len(),
                });
            }
        }
        self.k.extend_from_slice(k);
        self.v.extend_from_slice(v);
        self.len += 1;
        Ok(())
    }

    fn key_slice(&self, t: usize, kv_head: usize, head_dim: usize) -> &[f32] {
        let base = t * self.width + kv_head * head_dim;
        &self.k[base..base + head_dim]
    }

    fn value_slice(&self, t: usize, kv_head: usize, head_dim: usize) -> &[f32] {
        let base = t * self.width + kv_head * head_dim;
        &self.v[base..base + head_dim]
    }
}

/// Multi-head self-attention module.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiHeadAttention {
    /// Query projection, `d × (n_heads · head_dim)`.
    pub wq: AnyLinear,
    /// Key projection, `d × (n_kv_heads · head_dim)`.
    pub wk: AnyLinear,
    /// Value projection, `d × (n_kv_heads · head_dim)`.
    pub wv: AnyLinear,
    /// Output projection, `(n_heads · head_dim) × d`.
    pub wo: AnyLinear,
    n_heads: usize,
    n_kv_heads: usize,
    head_dim: usize,
    causal: bool,
    rope: Option<Rope>,
}

/// Cached forward state for [`MultiHeadAttention::forward`].
#[derive(Debug, Clone)]
pub struct AttentionCache {
    q_cache: AnyLinearCache,
    k_cache: AnyLinearCache,
    v_cache: AnyLinearCache,
    o_cache: AnyLinearCache,
    /// Rotated queries, `(B·T) × (H·hd)`.
    q: Tensor,
    /// Rotated keys, `(B·T) × (Hkv·hd)`.
    k: Tensor,
    /// Values, `(B·T) × (Hkv·hd)`.
    v: Tensor,
    /// Attention probabilities per (batch, head), each `T × T`.
    probs: Vec<Tensor>,
    batch: usize,
    seq: usize,
}

impl MultiHeadAttention {
    /// Creates a randomly initialized attention module.
    ///
    /// `use_rope = false` corresponds to BERT-style attention whose position
    /// information comes from learned embeddings at the model level.
    ///
    /// # Panics
    ///
    /// Panics if head counts are inconsistent.
    #[allow(clippy::too_many_arguments)] // mirrors the architecture hyper-parameter list
    pub fn new(
        d_model: usize,
        n_heads: usize,
        n_kv_heads: usize,
        max_seq: usize,
        causal: bool,
        use_rope: bool,
        bias: bool,
        rng: &mut Rng64,
    ) -> Self {
        assert!(
            d_model.is_multiple_of(n_heads),
            "d_model must divide by n_heads"
        );
        assert!(
            n_heads.is_multiple_of(n_kv_heads),
            "n_kv_heads must divide n_heads"
        );
        let head_dim = d_model / n_heads;
        MultiHeadAttention {
            wq: AnyLinear::dense(d_model, n_heads * head_dim, bias, rng),
            wk: AnyLinear::dense(d_model, n_kv_heads * head_dim, bias, rng),
            wv: AnyLinear::dense(d_model, n_kv_heads * head_dim, bias, rng),
            wo: AnyLinear::dense(n_heads * head_dim, d_model, bias, rng),
            n_heads,
            n_kv_heads,
            head_dim,
            causal,
            rope: use_rope.then(|| Rope::new(head_dim, max_seq)),
        }
    }

    /// Number of parameters across the four projections.
    pub fn param_count(&self) -> usize {
        self.wq.param_count()
            + self.wk.param_count()
            + self.wv.param_count()
            + self.wo.param_count()
    }

    /// Extracts the `T × head_dim` block for `(batch b, head h)` from a flat
    /// `(B·T) × (H·hd)` activation.
    fn head_block(flat: &Tensor, b: usize, h: usize, seq: usize, head_dim: usize) -> Tensor {
        let mut out = Tensor::zeros(&[seq, head_dim]);
        for t in 0..seq {
            let src = &flat.row(b * seq + t)[h * head_dim..(h + 1) * head_dim];
            out.row_mut(t).copy_from_slice(src);
        }
        out
    }

    /// Adds a `T × head_dim` block back into a flat activation gradient.
    fn add_head_block(
        flat: &mut Tensor,
        block: &Tensor,
        b: usize,
        h: usize,
        seq: usize,
        head_dim: usize,
    ) {
        for t in 0..seq {
            let dst = &mut flat.row_mut(b * seq + t)[h * head_dim..(h + 1) * head_dim];
            for (d, &s) in dst.iter_mut().zip(block.row(t)) {
                *d += s;
            }
        }
    }

    /// Incremental decode: processes one new token (batch 1) at absolute
    /// position `pos`, appending its key/value rows to `cache` and
    /// attending over the whole cache. Returns the attention output
    /// (`1 × d`).
    ///
    /// # Errors
    ///
    /// [`DecodeError::BatchMismatch`] if `x` is not a single row, plus the
    /// [`MultiHeadAttention::decode_step_many`] failure modes.
    pub fn decode_step(
        &self,
        x: &Tensor,
        pos: usize,
        cache: &mut KvCache,
    ) -> Result<Tensor, DecodeError> {
        if x.rows() != 1 {
            return Err(DecodeError::BatchMismatch {
                what: "input rows",
                expected: 1,
                got: x.rows(),
            });
        }
        self.decode_step_many(x, &[pos], &mut [cache])
    }

    /// Continuous-batching decode: processes one new token for each of `S`
    /// independent sessions at once. Row `i` of `xs` is session `i`'s token
    /// activation at absolute position `positions[i]`, extending
    /// `caches[i]`. All four projections run as single `S × d` GEMMs; the
    /// per-session attention over each session's own cache is unchanged
    /// from the batch-1 path, so row `i` of the output is bit-identical to
    /// a [`MultiHeadAttention::decode_step`] call for session `i` alone
    /// (the packed GEMM engine's per-row accumulation order does not
    /// depend on the batch height — see DESIGN.md §13).
    ///
    /// # Errors
    ///
    /// [`DecodeError::BatchMismatch`] if `positions`/`caches` disagree with
    /// `xs.rows()`, [`DecodeError::PositionMismatch`] if a position is not
    /// its cache's length, [`DecodeError::CacheFull`] at a session's
    /// `max_seq` bound. All sessions are validated before any cache is
    /// mutated, so no cache is extended on error.
    pub fn decode_step_many(
        &self,
        xs: &Tensor,
        positions: &[usize],
        caches: &mut [&mut KvCache],
    ) -> Result<Tensor, DecodeError> {
        let s_count = xs.rows();
        if positions.len() != s_count {
            return Err(DecodeError::BatchMismatch {
                what: "positions",
                expected: s_count,
                got: positions.len(),
            });
        }
        if caches.len() != s_count {
            return Err(DecodeError::BatchMismatch {
                what: "caches",
                expected: s_count,
                got: caches.len(),
            });
        }
        for (&pos, cache) in positions.iter().zip(caches.iter()) {
            if pos != cache.len() {
                return Err(DecodeError::PositionMismatch {
                    pos,
                    cached: cache.len(),
                });
            }
            if cache.len() >= cache.max_seq() {
                return Err(DecodeError::CacheFull {
                    max_seq: cache.max_seq(),
                });
            }
        }

        let mut q = self.wq.infer(xs);
        let mut k = self.wk.infer(xs);
        let v = self.wv.infer(xs);
        if let Some(rope) = &self.rope {
            for (i, &pos) in positions.iter().enumerate() {
                let qrow = q.row_mut(i);
                for h in 0..self.n_heads {
                    rope.apply(&mut qrow[h * self.head_dim..(h + 1) * self.head_dim], pos);
                }
                let krow = k.row_mut(i);
                for h in 0..self.n_kv_heads {
                    rope.apply(&mut krow[h * self.head_dim..(h + 1) * self.head_dim], pos);
                }
            }
        }
        for (i, cache) in caches.iter_mut().enumerate() {
            cache.push(k.row(i), v.row(i))?;
        }

        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let group = self.n_heads / self.n_kv_heads;
        let mut ctx = Tensor::zeros(&[s_count, self.n_heads * self.head_dim]);
        for (i, cache) in caches.iter().enumerate() {
            let ctx_len = cache.len();
            for h in 0..self.n_heads {
                let kv_h = h / group;
                let qh = &q.row(i)[h * self.head_dim..(h + 1) * self.head_dim];
                // Scores against every cached key of this session.
                let mut scores = Vec::with_capacity(ctx_len);
                for t in 0..ctx_len {
                    let kh = cache.key_slice(t, kv_h, self.head_dim);
                    let dot: f32 = qh.iter().zip(kh).map(|(&a, &b)| a * b).sum();
                    scores.push(dot * scale);
                }
                // Softmax.
                let max = scores.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
                let mut sum = 0.0f32;
                for s in &mut scores {
                    *s = (*s - max).exp();
                    sum += *s;
                }
                for s in &mut scores {
                    *s /= sum;
                }
                // Weighted value sum.
                let out = &mut ctx.row_mut(i)[h * self.head_dim..(h + 1) * self.head_dim];
                for (t, &s) in scores.iter().enumerate().take(ctx_len) {
                    let vh = cache.value_slice(t, kv_h, self.head_dim);
                    for (o, &vv) in out.iter_mut().zip(vh) {
                        *o += s * vv;
                    }
                }
            }
        }
        Ok(self.wo.infer(&ctx))
    }

    /// Forward pass over `x ((B·T) × d)` laid out batch-major.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != batch · seq`.
    pub fn forward(&self, x: &Tensor, batch: usize, seq: usize) -> (Tensor, AttentionCache) {
        assert_eq!(x.rows(), batch * seq, "attention input rows != batch*seq");
        let (mut q, q_cache) = self.wq.forward(x);
        let (mut k, k_cache) = self.wk.forward(x);
        let (v, v_cache) = self.wv.forward(x);

        if let Some(rope) = &self.rope {
            for b in 0..batch {
                for t in 0..seq {
                    let qrow = q.row_mut(b * seq + t);
                    for h in 0..self.n_heads {
                        rope.apply(&mut qrow[h * self.head_dim..(h + 1) * self.head_dim], t);
                    }
                    let krow = k.row_mut(b * seq + t);
                    for h in 0..self.n_kv_heads {
                        rope.apply(&mut krow[h * self.head_dim..(h + 1) * self.head_dim], t);
                    }
                }
            }
        }

        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let group = self.n_heads / self.n_kv_heads;
        let mut ctx = Tensor::zeros(&[batch * seq, self.n_heads * self.head_dim]);
        let mut probs = Vec::with_capacity(batch * self.n_heads);
        for b in 0..batch {
            for h in 0..self.n_heads {
                let kv_h = h / group;
                let qb = Self::head_block(&q, b, h, seq, self.head_dim);
                let kb = Self::head_block(&k, b, kv_h, seq, self.head_dim);
                let vb = Self::head_block(&v, b, kv_h, seq, self.head_dim);
                let mut scores = matmul_transb(&qb, &kb).scale(scale);
                if self.causal {
                    for t in 0..seq {
                        let row = scores.row_mut(t);
                        for entry in row.iter_mut().take(seq).skip(t + 1) {
                            *entry = f32::NEG_INFINITY;
                        }
                    }
                }
                let p = softmax_rows(&scores);
                let c = matmul(&p, &vb);
                Self::add_head_block(&mut ctx, &c, b, h, seq, self.head_dim);
                probs.push(p);
            }
        }

        let (y, o_cache) = self.wo.forward(&ctx);
        (
            y,
            AttentionCache {
                q_cache,
                k_cache,
                v_cache,
                o_cache,
                q,
                k,
                v,
                probs,
                batch,
                seq,
            },
        )
    }

    /// Inference-only forward: no projection caches, no retained attention
    /// probabilities — each head's score matrix is dropped as soon as its
    /// context rows are accumulated.
    pub fn infer(&self, x: &Tensor, batch: usize, seq: usize) -> Tensor {
        assert_eq!(x.rows(), batch * seq, "attention input rows != batch*seq");
        let mut q = self.wq.infer(x);
        let mut k = self.wk.infer(x);
        let v = self.wv.infer(x);

        if let Some(rope) = &self.rope {
            for b in 0..batch {
                for t in 0..seq {
                    let qrow = q.row_mut(b * seq + t);
                    for h in 0..self.n_heads {
                        rope.apply(&mut qrow[h * self.head_dim..(h + 1) * self.head_dim], t);
                    }
                    let krow = k.row_mut(b * seq + t);
                    for h in 0..self.n_kv_heads {
                        rope.apply(&mut krow[h * self.head_dim..(h + 1) * self.head_dim], t);
                    }
                }
            }
        }

        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let group = self.n_heads / self.n_kv_heads;
        let mut ctx = Tensor::zeros(&[batch * seq, self.n_heads * self.head_dim]);
        for b in 0..batch {
            for h in 0..self.n_heads {
                let kv_h = h / group;
                let qb = Self::head_block(&q, b, h, seq, self.head_dim);
                let kb = Self::head_block(&k, b, kv_h, seq, self.head_dim);
                let vb = Self::head_block(&v, b, kv_h, seq, self.head_dim);
                let mut scores = matmul_transb(&qb, &kb).scale(scale);
                if self.causal {
                    for t in 0..seq {
                        let row = scores.row_mut(t);
                        for entry in row.iter_mut().take(seq).skip(t + 1) {
                            *entry = f32::NEG_INFINITY;
                        }
                    }
                }
                let p = softmax_rows(&scores);
                let c = matmul(&p, &vb);
                Self::add_head_block(&mut ctx, &c, b, h, seq, self.head_dim);
            }
        }

        self.wo.infer(&ctx)
    }

    /// Backward pass; returns `dx`.
    pub fn backward(&mut self, cache: &AttentionCache, dy: &Tensor) -> Tensor {
        let (batch, seq) = (cache.batch, cache.seq);
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let group = self.n_heads / self.n_kv_heads;

        let dctx = self.wo.backward(&cache.o_cache, dy);

        let mut dq = Tensor::zeros(&[batch * seq, self.n_heads * self.head_dim]);
        let mut dk = Tensor::zeros(&[batch * seq, self.n_kv_heads * self.head_dim]);
        let mut dv = Tensor::zeros(&[batch * seq, self.n_kv_heads * self.head_dim]);

        for b in 0..batch {
            for h in 0..self.n_heads {
                let kv_h = h / group;
                let p = &cache.probs[b * self.n_heads + h];
                let dcb = Self::head_block(&dctx, b, h, seq, self.head_dim);
                let kb = Self::head_block(&cache.k, b, kv_h, seq, self.head_dim);
                let vb = Self::head_block(&cache.v, b, kv_h, seq, self.head_dim);
                let qb = Self::head_block(&cache.q, b, h, seq, self.head_dim);

                // dP = dC · Vᵀ ; dV = Pᵀ · dC
                let dp = matmul_transb(&dcb, &vb);
                let dvb = matmul_transa(p, &dcb);
                // dS = softmax'(P, dP); masked entries have P = 0 so they
                // produce zero gradient automatically.
                let ds = softmax_rows_backward(p, &dp).scale(scale);
                let dqb = matmul(&ds, &kb);
                let dkb = matmul_transa(&ds, &qb);

                Self::add_head_block(&mut dq, &dqb, b, h, seq, self.head_dim);
                Self::add_head_block(&mut dk, &dkb, b, kv_h, seq, self.head_dim);
                Self::add_head_block(&mut dv, &dvb, b, kv_h, seq, self.head_dim);
            }
        }

        if let Some(rope) = &self.rope {
            for b in 0..batch {
                for t in 0..seq {
                    let qrow = dq.row_mut(b * seq + t);
                    for h in 0..self.n_heads {
                        rope.apply_inverse(
                            &mut qrow[h * self.head_dim..(h + 1) * self.head_dim],
                            t,
                        );
                    }
                    let krow = dk.row_mut(b * seq + t);
                    for h in 0..self.n_kv_heads {
                        rope.apply_inverse(
                            &mut krow[h * self.head_dim..(h + 1) * self.head_dim],
                            t,
                        );
                    }
                }
            }
        }

        let mut dx = self.wq.backward(&cache.q_cache, &dq);
        dx.axpy(1.0, &self.wk.backward(&cache.k_cache, &dk));
        dx.axpy(1.0, &self.wv.backward(&cache.v_cache, &dv));
        dx
    }

    /// Visits the four projection slots as `(name, slot)` pairs — the hook
    /// used by the decomposer.
    pub fn visit_linears<'a>(&'a mut self, out: &mut Vec<(&'static str, &'a mut AnyLinear)>) {
        out.push(("wq", &mut self.wq));
        out.push(("wk", &mut self.wk));
        out.push(("wv", &mut self.wv));
        out.push(("wo", &mut self.wo));
    }

    /// Visits parameters as `(name, param)` pairs.
    pub fn visit_params<'a>(&'a mut self, prefix: &str, out: &mut Vec<(String, &'a mut Param)>) {
        self.wq.visit_params(&format!("{prefix}.wq"), out);
        self.wk.visit_params(&format!("{prefix}.wk"), out);
        self.wv.visit_params(&format!("{prefix}.wv"), out);
        self.wo.visit_params(&format!("{prefix}.wo"), out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attn(causal: bool, rope: bool, seed: u64) -> MultiHeadAttention {
        let mut rng = Rng64::new(seed);
        MultiHeadAttention::new(8, 2, 2, 16, causal, rope, false, &mut rng)
    }

    #[test]
    fn forward_shape() {
        let a = attn(true, true, 1);
        let mut rng = Rng64::new(10);
        let x = Tensor::randn(&[2 * 5, 8], &mut rng);
        let (y, _) = a.forward(&x, 2, 5);
        assert_eq!(y.dims(), &[10, 8]);
    }

    #[test]
    fn causal_mask_blocks_future() {
        // Changing a future token must not affect earlier outputs.
        let a = attn(true, true, 2);
        let mut rng = Rng64::new(11);
        let mut x = Tensor::randn(&[6, 8], &mut rng);
        let (y1, _) = a.forward(&x, 1, 6);
        // Perturb the last token.
        for v in x.row_mut(5) {
            *v += 1.0;
        }
        let (y2, _) = a.forward(&x, 1, 6);
        for t in 0..5 {
            for j in 0..8 {
                assert!(
                    (y1.get(&[t, j]) - y2.get(&[t, j])).abs() < 1e-5,
                    "future token leaked into position {t}"
                );
            }
        }
    }

    #[test]
    fn bidirectional_attends_everywhere() {
        let a = attn(false, false, 3);
        let mut rng = Rng64::new(12);
        let mut x = Tensor::randn(&[4, 8], &mut rng);
        let (y1, _) = a.forward(&x, 1, 4);
        for v in x.row_mut(3) {
            *v += 1.0;
        }
        let (y2, _) = a.forward(&x, 1, 4);
        // Early positions change in an encoder.
        let diff: f32 = (0..8)
            .map(|j| (y1.get(&[0, j]) - y2.get(&[0, j])).abs())
            .sum();
        assert!(diff > 1e-4);
    }

    #[test]
    fn batches_are_independent() {
        let a = attn(true, true, 4);
        let mut rng = Rng64::new(13);
        let x1 = Tensor::randn(&[3, 8], &mut rng);
        let x2 = Tensor::randn(&[3, 8], &mut rng);
        // Concatenate into a batch of 2.
        let mut both = Vec::new();
        both.extend_from_slice(x1.data());
        both.extend_from_slice(x2.data());
        let xb = Tensor::from_vec(&[6, 8], both);
        let (yb, _) = a.forward(&xb, 2, 3);
        let (y1, _) = a.forward(&x1, 1, 3);
        for t in 0..3 {
            for j in 0..8 {
                assert!((yb.get(&[t, j]) - y1.get(&[t, j])).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn backward_dx_matches_finite_difference() {
        let mut a = attn(true, true, 5);
        let mut rng = Rng64::new(14);
        let x = Tensor::randn(&[4, 8], &mut rng);
        let dy = Tensor::randn(&[4, 8], &mut rng);
        let (_, cache) = a.forward(&x, 1, 4);
        let dx = a.backward(&cache, &dy);
        let ac = a.clone();
        let h = 1e-2;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += h;
            let mut xm = x.clone();
            xm.data_mut()[i] -= h;
            let fd =
                (ac.forward(&xp, 1, 4).0.dot(&dy) - ac.forward(&xm, 1, 4).0.dot(&dy)) / (2.0 * h);
            assert!(
                (dx.data()[i] - fd).abs() < 3e-2,
                "dx[{i}]: {} vs {fd}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn backward_weight_grads_match_finite_difference() {
        let mut a = attn(false, false, 6);
        let mut rng = Rng64::new(15);
        let x = Tensor::randn(&[3, 8], &mut rng);
        let dy = Tensor::randn(&[3, 8], &mut rng);
        let (_, cache) = a.forward(&x, 1, 3);
        a.backward(&cache, &dy);
        // Check a handful of entries of W_Q and W_O.
        let h = 1e-2;
        let grads: Vec<f32> = match &a.wq {
            AnyLinear::Dense(l) => l.w.grad.data().to_vec(),
            _ => unreachable!(),
        };
        for &i in &[0usize, 5, 17, 33] {
            let mut ap = a.clone();
            let mut am = a.clone();
            if let (AnyLinear::Dense(lp), AnyLinear::Dense(lm)) = (&mut ap.wq, &mut am.wq) {
                lp.w.value.data_mut()[i] += h;
                lm.w.value.data_mut()[i] -= h;
            }
            let fd =
                (ap.forward(&x, 1, 3).0.dot(&dy) - am.forward(&x, 1, 3).0.dot(&dy)) / (2.0 * h);
            assert!(
                (grads[i] - fd).abs() < 2e-2,
                "dWq[{i}]: {} vs {fd}",
                grads[i]
            );
        }
    }

    #[test]
    fn gqa_shares_kv_heads() {
        let mut rng = Rng64::new(7);
        let a = MultiHeadAttention::new(8, 4, 2, 16, true, true, false, &mut rng);
        assert_eq!(a.wk.fan_out(), 2 * 2); // n_kv_heads * head_dim
        assert_eq!(a.wq.fan_out(), 4 * 2);
        let x = Tensor::randn(&[4, 8], &mut rng);
        let (y, _) = a.forward(&x, 1, 4);
        assert_eq!(y.dims(), &[4, 8]);
    }

    #[test]
    fn gqa_backward_matches_finite_difference() {
        let mut rng = Rng64::new(8);
        let mut a = MultiHeadAttention::new(8, 4, 2, 16, true, true, false, &mut rng);
        let x = Tensor::randn(&[3, 8], &mut rng);
        let dy = Tensor::randn(&[3, 8], &mut rng);
        let (_, cache) = a.forward(&x, 1, 3);
        let dx = a.backward(&cache, &dy);
        let ac = a.clone();
        let h = 1e-2;
        for &i in &[0usize, 7, 13, 20] {
            let mut xp = x.clone();
            xp.data_mut()[i] += h;
            let mut xm = x.clone();
            xm.data_mut()[i] -= h;
            let fd =
                (ac.forward(&xp, 1, 3).0.dot(&dy) - ac.forward(&xm, 1, 3).0.dot(&dy)) / (2.0 * h);
            assert!((dx.data()[i] - fd).abs() < 3e-2);
        }
    }
}
