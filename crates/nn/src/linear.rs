//! Dense and low-rank-factored linear layers.
//!
//! [`FactoredLinear`] is the deployed form of the paper's Tucker-decomposed
//! weight: a dense `in × out` matrix is replaced by
//! `U1 (in × pr) · Γ (pr × pr) · U2 (pr × out)`, turning one GEMM into three
//! smaller ones (§2.3). [`AnyLinear`] lets a model hold either form in the
//! same slot, which is how the decomposer swaps tensors in place.

use crate::param::Param;
use lrd_tensor::matmul::{
    factored_matmul, factored_matmul_caches, matmul, matmul_transa, matmul_transb,
};
use lrd_tensor::rng::Rng64;
use lrd_tensor::tucker::Tucker2;
use lrd_tensor::Tensor;

/// Adds `bias` to every row of `y` in place.
fn add_bias_rows(y: &mut Tensor, bias: &[f32]) {
    for i in 0..y.rows() {
        for (v, &bj) in y.row_mut(i).iter_mut().zip(bias) {
            *v += bj;
        }
    }
}

/// A dense affine layer `y = x·W (+ b)` with `W (in × out)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Linear {
    /// Weight matrix, `in × out`.
    pub w: Param,
    /// Optional bias, length `out`.
    pub b: Option<Param>,
}

/// Cached forward state for [`Linear::forward`].
#[derive(Debug, Clone)]
pub struct LinearCache {
    x: Tensor,
}

impl Linear {
    /// Xavier-initialized layer.
    pub fn new(fan_in: usize, fan_out: usize, bias: bool, rng: &mut Rng64) -> Self {
        Linear {
            w: Param::xavier(fan_in, fan_out, rng),
            b: bias.then(|| Param::zeros(&[fan_out])),
        }
    }

    /// Builds a layer from an existing weight matrix (no bias).
    pub fn from_weight(w: Tensor) -> Self {
        Linear {
            w: Param::new(w),
            b: None,
        }
    }

    /// Input width.
    pub fn fan_in(&self) -> usize {
        self.w.value.rows()
    }

    /// Output width.
    pub fn fan_out(&self) -> usize {
        self.w.value.cols()
    }

    /// Number of stored parameters.
    pub fn param_count(&self) -> usize {
        self.w.len() + self.b.as_ref().map_or(0, Param::len)
    }

    /// Forward pass for a batch of rows `x (m × in)`.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != fan_in`.
    pub fn forward(&self, x: &Tensor) -> (Tensor, LinearCache) {
        let mut y = matmul(x, &self.w.value);
        if let Some(b) = &self.b {
            add_bias_rows(&mut y, b.value.data());
        }
        (y, LinearCache { x: x.clone() })
    }

    /// Inference-only forward: no cache is built, so `x` is never cloned.
    pub fn infer(&self, x: &Tensor) -> Tensor {
        let mut y = matmul(x, &self.w.value);
        if let Some(b) = &self.b {
            add_bias_rows(&mut y, b.value.data());
        }
        y
    }

    /// Backward pass: accumulates weight/bias gradients and returns `dx`.
    pub fn backward(&mut self, cache: &LinearCache, dy: &Tensor) -> Tensor {
        let dw = matmul_transa(&cache.x, dy);
        self.w.accumulate(&dw);
        if let Some(b) = &mut self.b {
            let mut db = Tensor::zeros(&[dy.cols()]);
            for i in 0..dy.rows() {
                for (j, &g) in dy.row(i).iter().enumerate() {
                    db.data_mut()[j] += g;
                }
            }
            b.accumulate(&db);
        }
        matmul_transb(dy, &self.w.value)
    }

    /// Visits parameters as `(name, param)` pairs.
    pub fn visit_params<'a>(&'a mut self, prefix: &str, out: &mut Vec<(String, &'a mut Param)>) {
        out.push((format!("{prefix}.w"), &mut self.w));
        if let Some(b) = &mut self.b {
            out.push((format!("{prefix}.b"), b));
        }
    }
}

/// The factored (decomposed) linear layer `y = ((x·U1)·Γ)·U2 (+ b)`.
///
/// Replaces a dense `in × out` weight with three factors of pruned rank
/// `pr`, storing `in·pr + pr² + pr·out` weights.
#[derive(Debug, Clone, PartialEq)]
pub struct FactoredLinear {
    /// Left factor, `in × pr`.
    pub u1: Param,
    /// Core, `pr × pr`.
    pub core: Param,
    /// Right factor, `pr × out`.
    pub u2: Param,
    /// Optional bias carried over from the dense layer.
    pub b: Option<Param>,
}

/// Cached forward state for [`FactoredLinear::forward`].
#[derive(Debug, Clone)]
pub struct FactoredCache {
    x: Tensor,
    h1: Tensor,
    h2: Tensor,
}

impl FactoredLinear {
    /// Builds the factored layer from a Tucker-2 factorization of a dense
    /// weight, carrying over the dense layer's bias.
    pub fn from_tucker(t: Tucker2, bias: Option<Param>) -> Self {
        FactoredLinear {
            u1: Param::new(t.u1),
            core: Param::new(t.core),
            u2: Param::new(t.u2),
            b: bias,
        }
    }

    /// The pruned rank.
    pub fn rank(&self) -> usize {
        self.core.value.rows()
    }

    /// Input width.
    pub fn fan_in(&self) -> usize {
        self.u1.value.rows()
    }

    /// Output width.
    pub fn fan_out(&self) -> usize {
        self.u2.value.cols()
    }

    /// Number of stored parameters.
    pub fn param_count(&self) -> usize {
        self.u1.len() + self.core.len() + self.u2.len() + self.b.as_ref().map_or(0, Param::len)
    }

    /// Reconstructs the equivalent dense weight `U1·Γ·U2`.
    pub fn reconstruct_weight(&self) -> Tensor {
        matmul(&matmul(&self.u1.value, &self.core.value), &self.u2.value)
    }

    /// Forward pass `y = ((x·U1)·Γ)·U2 (+ b)` through the fused factored
    /// GEMM pipeline; `h1`/`h2` come back from the fused pass for the
    /// backward step instead of being produced by separate GEMM calls.
    pub fn forward(&self, x: &Tensor) -> (Tensor, FactoredCache) {
        let (mut y, h1, h2) =
            factored_matmul_caches(x, &self.u1.value, &self.core.value, &self.u2.value);
        if let Some(b) = &self.b {
            add_bias_rows(&mut y, b.value.data());
        }
        (
            y,
            FactoredCache {
                x: x.clone(),
                h1,
                h2,
            },
        )
    }

    /// Inference-only forward via the fused factored pipeline: the
    /// `h1`/`h2` intermediates stay in cache-blocked scratch inside the
    /// engine and never materialize as tensors.
    pub fn infer(&self, x: &Tensor) -> Tensor {
        let mut y = factored_matmul(x, &self.u1.value, &self.core.value, &self.u2.value);
        if let Some(b) = &self.b {
            add_bias_rows(&mut y, b.value.data());
        }
        y
    }

    /// Backward pass through all three factors; returns `dx`.
    pub fn backward(&mut self, cache: &FactoredCache, dy: &Tensor) -> Tensor {
        if let Some(b) = &mut self.b {
            let mut db = Tensor::zeros(&[dy.cols()]);
            for i in 0..dy.rows() {
                for (j, &g) in dy.row(i).iter().enumerate() {
                    db.data_mut()[j] += g;
                }
            }
            b.accumulate(&db);
        }
        let du2 = matmul_transa(&cache.h2, dy);
        self.u2.accumulate(&du2);
        let dh2 = matmul_transb(dy, &self.u2.value);
        let dcore = matmul_transa(&cache.h1, &dh2);
        self.core.accumulate(&dcore);
        let dh1 = matmul_transb(&dh2, &self.core.value);
        let du1 = matmul_transa(&cache.x, &dh1);
        self.u1.accumulate(&du1);
        matmul_transb(&dh1, &self.u1.value)
    }

    /// Visits parameters as `(name, param)` pairs.
    pub fn visit_params<'a>(&'a mut self, prefix: &str, out: &mut Vec<(String, &'a mut Param)>) {
        out.push((format!("{prefix}.u1"), &mut self.u1));
        out.push((format!("{prefix}.core"), &mut self.core));
        out.push((format!("{prefix}.u2"), &mut self.u2));
        if let Some(b) = &mut self.b {
            out.push((format!("{prefix}.b"), b));
        }
    }
}

/// A linear slot that is either dense or factored — the unit of replacement
/// for the decomposer.
#[derive(Debug, Clone, PartialEq)]
pub enum AnyLinear {
    /// Original dense layer.
    Dense(Linear),
    /// Tucker-decomposed layer.
    Factored(FactoredLinear),
}

/// Cache for [`AnyLinear::forward`].
#[derive(Debug, Clone)]
pub enum AnyLinearCache {
    /// Cache of the dense branch.
    Dense(LinearCache),
    /// Cache of the factored branch.
    Factored(FactoredCache),
}

impl AnyLinear {
    /// Xavier-initialized dense layer.
    pub fn dense(fan_in: usize, fan_out: usize, bias: bool, rng: &mut Rng64) -> Self {
        AnyLinear::Dense(Linear::new(fan_in, fan_out, bias, rng))
    }

    /// Whether the slot currently holds a factored layer.
    pub fn is_factored(&self) -> bool {
        matches!(self, AnyLinear::Factored(_))
    }

    /// Input width.
    pub fn fan_in(&self) -> usize {
        match self {
            AnyLinear::Dense(l) => l.fan_in(),
            AnyLinear::Factored(f) => f.fan_in(),
        }
    }

    /// Output width.
    pub fn fan_out(&self) -> usize {
        match self {
            AnyLinear::Dense(l) => l.fan_out(),
            AnyLinear::Factored(f) => f.fan_out(),
        }
    }

    /// Number of stored parameters.
    pub fn param_count(&self) -> usize {
        match self {
            AnyLinear::Dense(l) => l.param_count(),
            AnyLinear::Factored(f) => f.param_count(),
        }
    }

    /// Forward pass.
    pub fn forward(&self, x: &Tensor) -> (Tensor, AnyLinearCache) {
        match self {
            AnyLinear::Dense(l) => {
                let (y, c) = l.forward(x);
                (y, AnyLinearCache::Dense(c))
            }
            AnyLinear::Factored(f) => {
                let (y, c) = f.forward(x);
                (y, AnyLinearCache::Factored(c))
            }
        }
    }

    /// Inference-only forward.
    pub fn infer(&self, x: &Tensor) -> Tensor {
        match self {
            AnyLinear::Dense(l) => l.infer(x),
            AnyLinear::Factored(f) => f.infer(x),
        }
    }

    /// Backward pass; returns `dx`.
    ///
    /// # Panics
    ///
    /// Panics if the cache variant does not match the layer variant.
    pub fn backward(&mut self, cache: &AnyLinearCache, dy: &Tensor) -> Tensor {
        match (self, cache) {
            (AnyLinear::Dense(l), AnyLinearCache::Dense(c)) => l.backward(c, dy),
            (AnyLinear::Factored(f), AnyLinearCache::Factored(c)) => f.backward(c, dy),
            // lrd-lint: allow(no-panic, "documented `# Panics` contract: pairing a cache with the wrong layer variant is a caller bug")
            _ => panic!("AnyLinear::backward: cache variant mismatch"),
        }
    }

    /// Visits parameters as `(name, param)` pairs.
    pub fn visit_params<'a>(&'a mut self, prefix: &str, out: &mut Vec<(String, &'a mut Param)>) {
        match self {
            AnyLinear::Dense(l) => l.visit_params(prefix, out),
            AnyLinear::Factored(f) => f.visit_params(prefix, out),
        }
    }

    /// The dense weight this slot represents (reconstructed if factored).
    pub fn effective_weight(&self) -> Tensor {
        match self {
            AnyLinear::Dense(l) => l.w.value.clone(),
            AnyLinear::Factored(f) => f.reconstruct_weight(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numerical_dx(f: &dyn Fn(&Tensor) -> Tensor, x: &Tensor, dy: &Tensor, h: f32) -> Tensor {
        let mut dx = Tensor::zeros(x.dims());
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += h;
            let mut xm = x.clone();
            xm.data_mut()[i] -= h;
            let fp = f(&xp).dot(dy);
            let fm = f(&xm).dot(dy);
            dx.data_mut()[i] = (fp - fm) / (2.0 * h);
        }
        dx
    }

    #[test]
    fn linear_forward_shape_and_bias() {
        let mut rng = Rng64::new(1);
        let mut l = Linear::new(4, 3, true, &mut rng);
        l.b.as_mut().unwrap().value.data_mut()[1] = 2.0;
        let x = Tensor::zeros(&[5, 4]);
        let (y, _) = l.forward(&x);
        assert_eq!(y.dims(), &[5, 3]);
        assert_eq!(y.get(&[2, 1]), 2.0);
    }

    #[test]
    fn linear_backward_dx_matches_finite_difference() {
        let mut rng = Rng64::new(2);
        let mut l = Linear::new(4, 3, true, &mut rng);
        let x = Tensor::randn(&[2, 4], &mut rng);
        let dy = Tensor::randn(&[2, 3], &mut rng);
        let (_, cache) = l.forward(&x);
        let dx = l.backward(&cache, &dy);
        let lc = l.clone();
        let fd = numerical_dx(&|x| lc.forward(x).0, &x, &dy, 1e-2);
        assert!(dx.approx_eq(&fd, 1e-2), "dx mismatch");
    }

    #[test]
    fn linear_backward_dw_matches_finite_difference() {
        let mut rng = Rng64::new(3);
        let mut l = Linear::new(3, 2, false, &mut rng);
        let x = Tensor::randn(&[4, 3], &mut rng);
        let dy = Tensor::randn(&[4, 2], &mut rng);
        let (_, cache) = l.forward(&x);
        l.backward(&cache, &dy);
        let h = 1e-2;
        for i in 0..l.w.len() {
            let mut lp = l.clone();
            lp.w.value.data_mut()[i] += h;
            let mut lm = l.clone();
            lm.w.value.data_mut()[i] -= h;
            let fd = (lp.forward(&x).0.dot(&dy) - lm.forward(&x).0.dot(&dy)) / (2.0 * h);
            assert!((l.w.grad.data()[i] - fd).abs() < 1e-2, "dw[{i}]");
        }
    }

    #[test]
    fn factored_equals_dense_at_full_rank() {
        let mut rng = Rng64::new(4);
        let dense = Linear::new(6, 5, false, &mut rng);
        let fac = FactoredLinear::from_tucker(
            lrd_tensor::tucker::tucker2(&dense.w.value, 5).unwrap(),
            None,
        );
        let x = Tensor::randn(&[3, 6], &mut rng);
        let yd = dense.infer(&x);
        let yf = fac.infer(&x);
        // At 16-bit B-panel storage the dense path rounds W once while the
        // factored path rounds three smaller panels, so the two sides agree
        // only to the documented storage bound, not to f32 accuracy.
        let tol = match lrd_tensor::dtype::KernelDtype::active() {
            lrd_tensor::dtype::KernelDtype::F32 => 1e-3,
            _ => 5e-2,
        };
        assert!(yd.approx_eq(&yf, tol));
    }

    #[test]
    fn factored_backward_matches_finite_difference() {
        // Finite differences through a forward whose B panels are stored
        // at 16 bits measure the storage rounding, not the analytic
        // gradient — the check is only well-posed at f32 storage.
        if lrd_tensor::dtype::KernelDtype::active() != lrd_tensor::dtype::KernelDtype::F32 {
            return;
        }
        let mut rng = Rng64::new(5);
        let w = Tensor::randn(&[5, 4], &mut rng);
        let mut fac =
            FactoredLinear::from_tucker(lrd_tensor::tucker::tucker2(&w, 2).unwrap(), None);
        let x = Tensor::randn(&[3, 5], &mut rng);
        let dy = Tensor::randn(&[3, 4], &mut rng);
        let (_, cache) = fac.forward(&x);
        let dx = fac.backward(&cache, &dy);
        let fc = fac.clone();
        let fd = numerical_dx(&|x| fc.forward(x).0, &x, &dy, 1e-2);
        assert!(dx.approx_eq(&fd, 1e-2));
        // Core gradient check.
        let h = 1e-2;
        for i in 0..fac.core.len() {
            let mut fp = fac.clone();
            fp.core.value.data_mut()[i] += h;
            let mut fm = fac.clone();
            fm.core.value.data_mut()[i] -= h;
            let fd = (fp.forward(&x).0.dot(&dy) - fm.forward(&x).0.dot(&dy)) / (2.0 * h);
            assert!((fac.core.grad.data()[i] - fd).abs() < 2e-2, "dcore[{i}]");
        }
    }

    #[test]
    fn factored_param_count() {
        let mut rng = Rng64::new(6);
        let w = Tensor::randn(&[10, 8], &mut rng);
        let fac = FactoredLinear::from_tucker(lrd_tensor::tucker::tucker2(&w, 1).unwrap(), None);
        assert_eq!(fac.param_count(), 10 + 1 + 8);
        assert_eq!(fac.rank(), 1);
        assert_eq!(fac.fan_in(), 10);
        assert_eq!(fac.fan_out(), 8);
    }

    #[test]
    fn any_linear_swap_preserves_shapes() {
        let mut rng = Rng64::new(7);
        let slot = AnyLinear::dense(6, 4, false, &mut rng);
        let w = slot.effective_weight();
        let fac = AnyLinear::Factored(FactoredLinear::from_tucker(
            lrd_tensor::tucker::tucker2(&w, 1).unwrap(),
            None,
        ));
        assert_eq!(slot.fan_in(), fac.fan_in());
        assert_eq!(slot.fan_out(), fac.fan_out());
        assert!(fac.is_factored() && !slot.is_factored());
        assert!(fac.param_count() < slot.param_count());
    }

    #[test]
    fn visit_params_names() {
        let mut rng = Rng64::new(8);
        let mut l = AnyLinear::dense(3, 3, true, &mut rng);
        let mut out = Vec::new();
        l.visit_params("blk0.q", &mut out);
        let names: Vec<_> = out.iter().map(|(n, _)| n.clone()).collect();
        assert_eq!(names, vec!["blk0.q.w", "blk0.q.b"]);
    }
}
