//! Rotary position embeddings (RoPE), as used by Llama 2.
//!
//! RoPE rotates each consecutive pair of head-dimension channels of the
//! query/key vectors by a position-dependent angle. It has no parameters;
//! its backward pass is a rotation by the negated angles.

/// Precomputed RoPE rotation tables for a head dimension and maximum
/// sequence length.
#[derive(Debug, Clone, PartialEq)]
pub struct Rope {
    head_dim: usize,
    max_seq: usize,
    /// cos/sin tables, indexed `[pos * head_dim/2 + pair]`.
    cos: Vec<f32>,
    sin: Vec<f32>,
}

impl Rope {
    /// Builds rotation tables with the standard base of 10 000.
    ///
    /// # Panics
    ///
    /// Panics if `head_dim` is odd.
    pub fn new(head_dim: usize, max_seq: usize) -> Self {
        assert!(
            head_dim.is_multiple_of(2),
            "RoPE requires an even head dimension, got {head_dim}"
        );
        let half = head_dim / 2;
        let mut cos = Vec::with_capacity(max_seq * half);
        let mut sin = Vec::with_capacity(max_seq * half);
        for pos in 0..max_seq {
            for pair in 0..half {
                let theta = pos as f64 / 10_000f64.powf(2.0 * pair as f64 / head_dim as f64);
                cos.push(theta.cos() as f32);
                sin.push(theta.sin() as f32);
            }
        }
        Rope {
            head_dim,
            max_seq,
            cos,
            sin,
        }
    }

    /// The head dimension the tables were built for.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Rotates a single head vector `v` (length `head_dim`) in place for
    /// token position `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos ≥ max_seq` or the vector length mismatches.
    pub fn apply(&self, v: &mut [f32], pos: usize) {
        self.rotate(v, pos, 1.0);
    }

    /// Inverse rotation (the backward pass for gradients).
    ///
    /// # Panics
    ///
    /// Panics if `pos ≥ max_seq` or the vector length mismatches.
    pub fn apply_inverse(&self, v: &mut [f32], pos: usize) {
        self.rotate(v, pos, -1.0);
    }

    fn rotate(&self, v: &mut [f32], pos: usize, sign: f32) {
        assert!(
            pos < self.max_seq,
            "position {pos} exceeds RoPE table ({})",
            self.max_seq
        );
        assert_eq!(v.len(), self.head_dim, "RoPE vector length mismatch");
        let half = self.head_dim / 2;
        let base = pos * half;
        for pair in 0..half {
            let c = self.cos[base + pair];
            let s = self.sin[base + pair] * sign;
            let (a, b) = (v[2 * pair], v[2 * pair + 1]);
            v[2 * pair] = a * c - b * s;
            v[2 * pair + 1] = a * s + b * c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_zero_is_identity() {
        let rope = Rope::new(8, 16);
        let mut v: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let orig = v.clone();
        rope.apply(&mut v, 0);
        assert_eq!(v, orig);
    }

    #[test]
    fn rotation_preserves_norm() {
        let rope = Rope::new(8, 32);
        let mut v: Vec<f32> = (0..8).map(|i| (i as f32) - 3.5).collect();
        let norm0: f32 = v.iter().map(|x| x * x).sum();
        rope.apply(&mut v, 13);
        let norm1: f32 = v.iter().map(|x| x * x).sum();
        assert!((norm0 - norm1).abs() < 1e-4);
    }

    #[test]
    fn inverse_undoes_rotation() {
        let rope = Rope::new(6, 20);
        let mut v = vec![1.0f32, -2.0, 0.5, 3.0, -1.5, 0.25];
        let orig = v.clone();
        rope.apply(&mut v, 7);
        rope.apply_inverse(&mut v, 7);
        for (a, b) in v.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn relative_position_property() {
        // The inner product of rotated q, k depends only on the position
        // difference: <R_m q, R_n k> = <R_{m-n} q, k>.
        let rope = Rope::new(4, 64);
        let q = vec![0.3f32, -0.7, 1.1, 0.2];
        let k = vec![-0.5f32, 0.9, 0.4, -1.0];
        let dot = |a: &[f32], b: &[f32]| -> f32 { a.iter().zip(b).map(|(x, y)| x * y).sum() };
        let (m, n) = (11usize, 4usize);
        let mut qm = q.clone();
        rope.apply(&mut qm, m);
        let mut kn = k.clone();
        rope.apply(&mut kn, n);
        let mut qd = q.clone();
        rope.apply(&mut qd, m - n);
        assert!((dot(&qm, &kn) - dot(&qd, &k)).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "even head dimension")]
    fn odd_head_dim_rejected() {
        let _ = Rope::new(5, 8);
    }
}
