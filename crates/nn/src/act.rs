//! Activation functions, softmax and the cross-entropy loss, each with an
//! exact backward pass.

use lrd_tensor::Tensor;

/// GELU (tanh approximation, as used by BERT).
pub fn gelu(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/π)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

/// Derivative of [`gelu`].
pub fn gelu_grad(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let x3 = 0.044715 * x * x * x;
    let t = (C * (x + x3)).tanh();
    let dt = (1.0 - t * t) * C * (1.0 + 3.0 * 0.044715 * x * x);
    0.5 * (1.0 + t) + 0.5 * x * dt
}

/// SiLU / swish, `x · σ(x)` (used by Llama's SwiGLU MLP).
pub fn silu(x: f32) -> f32 {
    x * sigmoid(x)
}

/// Derivative of [`silu`].
pub fn silu_grad(x: f32) -> f32 {
    let s = sigmoid(x);
    s * (1.0 + x * (1.0 - s))
}

/// Logistic sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Row-wise numerically-stable softmax of a matrix.
///
/// # Panics
///
/// Panics if `x` is not order-2.
pub fn softmax_rows(x: &Tensor) -> Tensor {
    let (m, n) = (x.rows(), x.cols());
    let mut out = Tensor::zeros(&[m, n]);
    for i in 0..m {
        let row = x.row(i);
        let max = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let orow = out.row_mut(i);
        let mut sum = 0.0f32;
        for j in 0..n {
            let e = (row[j] - max).exp();
            orow[j] = e;
            sum += e;
        }
        let inv = 1.0 / sum;
        for v in orow {
            *v *= inv;
        }
    }
    out
}

/// Backward pass of row-wise softmax: given probabilities `p` and upstream
/// gradient `dp`, returns the gradient w.r.t. the logits.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn softmax_rows_backward(p: &Tensor, dp: &Tensor) -> Tensor {
    assert_eq!(p.dims(), dp.dims(), "softmax backward shape mismatch");
    let (m, n) = (p.rows(), p.cols());
    let mut dx = Tensor::zeros(&[m, n]);
    for i in 0..m {
        let prow = p.row(i);
        let drow = dp.row(i);
        let dot: f32 = prow.iter().zip(drow).map(|(&a, &b)| a * b).sum();
        let xrow = dx.row_mut(i);
        for j in 0..n {
            xrow[j] = prow[j] * (drow[j] - dot);
        }
    }
    dx
}

/// Target value marking a position excluded from the loss.
pub const IGNORE_INDEX: usize = usize::MAX;

/// Mean cross-entropy of row-wise logits against integer targets, and the
/// gradient w.r.t. the logits.
///
/// Rows whose target is [`IGNORE_INDEX`] contribute neither loss nor
/// gradient — used to mask prompt tokens during fine-tuning.
///
/// # Panics
///
/// Panics if `targets.len() != logits.rows()` or a target is out of range.
pub fn cross_entropy(logits: &Tensor, targets: &[usize]) -> (f32, Tensor) {
    let (m, v) = (logits.rows(), logits.cols());
    assert_eq!(m, targets.len(), "cross_entropy target count mismatch");
    let probs = softmax_rows(logits);
    let mut dlogits = Tensor::zeros(&[m, v]);
    let mut loss = 0.0f64;
    let mut counted = 0usize;
    for (i, &t) in targets.iter().enumerate() {
        if t == IGNORE_INDEX {
            continue;
        }
        assert!(t < v, "target {t} out of vocabulary range {v}");
        counted += 1;
        loss -= (probs.get(&[i, t]).max(1e-12) as f64).ln();
    }
    let scale = if counted > 0 {
        1.0 / counted as f32
    } else {
        0.0
    };
    for (i, &t) in targets.iter().enumerate() {
        if t == IGNORE_INDEX {
            continue;
        }
        let prow = probs.row(i).to_vec();
        let drow = dlogits.row_mut(i);
        for j in 0..v {
            drow[j] = scale * (prow[j] - if j == t { 1.0 } else { 0.0 });
        }
    }
    let mean = if counted > 0 {
        loss as f32 / counted as f32
    } else {
        0.0
    };
    (mean, dlogits)
}

/// Row-wise log-softmax (for log-likelihood scoring).
pub fn log_softmax_rows(x: &Tensor) -> Tensor {
    let (m, n) = (x.rows(), x.cols());
    let mut out = Tensor::zeros(&[m, n]);
    for i in 0..m {
        let row = x.row(i);
        let max = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let lse = max + row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln();
        let orow = out.row_mut(i);
        for j in 0..n {
            orow[j] = row[j] - lse;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff(f: impl Fn(f32) -> f32, x: f32) -> f32 {
        let h = 1e-3;
        (f(x + h) - f(x - h)) / (2.0 * h)
    }

    #[test]
    fn gelu_matches_finite_difference() {
        for &x in &[-3.0f32, -1.0, -0.1, 0.0, 0.5, 2.0] {
            let fd = finite_diff(gelu, x);
            assert!(
                (gelu_grad(x) - fd).abs() < 1e-2,
                "x={x}: {} vs {fd}",
                gelu_grad(x)
            );
        }
    }

    #[test]
    fn silu_matches_finite_difference() {
        for &x in &[-4.0f32, -1.0, 0.0, 1.0, 3.0] {
            let fd = finite_diff(silu, x);
            assert!((silu_grad(x) - fd).abs() < 1e-2);
        }
    }

    #[test]
    fn gelu_limits() {
        assert!(gelu(10.0) > 9.99);
        assert!(gelu(-10.0).abs() < 1e-3);
        assert_eq!(gelu(0.0), 0.0);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let p = softmax_rows(&x);
        for i in 0..2 {
            let s: f32 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        // Monotone in logits.
        assert!(p.get(&[0, 2]) > p.get(&[0, 1]));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let x = Tensor::from_vec(&[1, 3], vec![1.0, 2.0, 3.0]);
        let y = x.map(|v| v + 100.0);
        assert!(softmax_rows(&x).approx_eq(&softmax_rows(&y), 1e-5));
    }

    #[test]
    fn softmax_backward_matches_finite_difference() {
        let x = Tensor::from_vec(&[1, 4], vec![0.5, -0.2, 0.1, 0.9]);
        let dp = Tensor::from_vec(&[1, 4], vec![1.0, -0.5, 0.2, 0.3]);
        let dx = softmax_rows_backward(&softmax_rows(&x), &dp);
        let h = 1e-3;
        for j in 0..4 {
            let mut xp = x.clone();
            xp.set(&[0, j], x.get(&[0, j]) + h);
            let mut xm = x.clone();
            xm.set(&[0, j], x.get(&[0, j]) - h);
            let f = |t: &Tensor| -> f32 { softmax_rows(t).dot(&dp) };
            let fd = (f(&xp) - f(&xm)) / (2.0 * h);
            assert!((dx.get(&[0, j]) - fd).abs() < 1e-3, "j={j}");
        }
    }

    #[test]
    fn cross_entropy_perfect_prediction_is_small() {
        let mut logits = Tensor::zeros(&[2, 4]);
        logits.set(&[0, 1], 20.0);
        logits.set(&[1, 3], 20.0);
        let (loss, _) = cross_entropy(&logits, &[1, 3]);
        assert!(loss < 1e-3);
    }

    #[test]
    fn cross_entropy_uniform_is_log_v() {
        let logits = Tensor::zeros(&[1, 8]);
        let (loss, _) = cross_entropy(&logits, &[3]);
        assert!((loss - (8.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_grad_matches_finite_difference() {
        let logits = Tensor::from_vec(&[2, 3], vec![0.2, -0.4, 0.6, 1.0, 0.1, -0.3]);
        let targets = [2usize, 0];
        let (_, grad) = cross_entropy(&logits, &targets);
        let h = 1e-3;
        for i in 0..2 {
            for j in 0..3 {
                let mut lp = logits.clone();
                lp.set(&[i, j], logits.get(&[i, j]) + h);
                let mut lm = logits.clone();
                lm.set(&[i, j], logits.get(&[i, j]) - h);
                let fd =
                    (cross_entropy(&lp, &targets).0 - cross_entropy(&lm, &targets).0) / (2.0 * h);
                assert!((grad.get(&[i, j]) - fd).abs() < 1e-3, "({i},{j})");
            }
        }
    }

    #[test]
    fn cross_entropy_ignores_masked_rows() {
        let logits = Tensor::from_vec(&[2, 3], vec![5.0, 0.0, 0.0, 0.0, 5.0, 0.0]);
        let (loss_both, _) = cross_entropy(&logits, &[0, 1]);
        let (loss_one, grad) = cross_entropy(&logits, &[0, IGNORE_INDEX]);
        assert!((loss_both - loss_one).abs() < 1e-6);
        assert!(grad.row(1).iter().all(|&g| g == 0.0));
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let x = Tensor::from_vec(&[1, 5], vec![0.3, -1.0, 2.0, 0.0, 1.0]);
        let ls = log_softmax_rows(&x);
        let p = softmax_rows(&x);
        for j in 0..5 {
            assert!((ls.get(&[0, j]).exp() - p.get(&[0, j])).abs() < 1e-5);
        }
    }
}
