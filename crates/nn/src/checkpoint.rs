//! Binary checkpointing of model weights.
//!
//! Format (little-endian):
//!
//! ```text
//! magic "LRDCKPT1" (8 bytes)
//! config: kind(u8) vocab d_model n_layers n_heads n_kv_heads d_ff max_seq (u32 each)
//! n_params (u32)
//! per param: name_len(u32) name(utf8) n_dims(u32) dims(u32 each) data(f32 each)
//! ```
//!
//! Checkpoints are written for *dense* models (the trained baselines);
//! decomposition is applied after loading. Saving a model with factored
//! layers is rejected.

use crate::config::{ArchKind, TransformerConfig};
use crate::model::TransformerLm;
use lrd_tensor::rng::Rng64;
use lrd_tensor::Tensor;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"LRDCKPT1";

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Saves a dense model's weights to `path`.
///
/// # Errors
///
/// Returns an I/O error on filesystem failure, or `InvalidInput` if the
/// model contains factored layers.
pub fn save_model(path: impl AsRef<Path>, model: &mut TransformerLm) -> io::Result<()> {
    if model
        .visit_linears()
        .iter()
        .any(|(_, _, slot)| slot.is_factored())
    {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "cannot checkpoint a model with factored layers; checkpoint before decomposing",
        ));
    }
    let cfg = model.config().clone();
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    w.write_all(MAGIC)?;
    w.write_all(&[match cfg.kind {
        ArchKind::Encoder => 0u8,
        ArchKind::Decoder => 1u8,
    }])?;
    for v in [
        cfg.vocab_size,
        cfg.d_model,
        cfg.n_layers,
        cfg.n_heads,
        cfg.n_kv_heads,
        cfg.d_ff,
        cfg.max_seq,
    ] {
        write_u32(&mut w, v as u32)?;
    }
    let params = model.visit_params();
    write_u32(&mut w, params.len() as u32)?;
    for (name, p) in params {
        write_u32(&mut w, name.len() as u32)?;
        w.write_all(name.as_bytes())?;
        write_u32(&mut w, p.value.dims().len() as u32)?;
        for &d in p.value.dims() {
            write_u32(&mut w, d as u32)?;
        }
        for &x in p.value.data() {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Loads a model saved by [`save_model`].
///
/// # Errors
///
/// Returns an I/O error on filesystem failure or a malformed file
/// (`InvalidData`).
pub fn load_model(path: impl AsRef<Path>) -> io::Result<TransformerLm> {
    let file = File::open(path)?;
    let mut r = BufReader::new(file);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad checkpoint magic",
        ));
    }
    let mut kind_byte = [0u8; 1];
    r.read_exact(&mut kind_byte)?;
    let kind = match kind_byte[0] {
        0 => ArchKind::Encoder,
        1 => ArchKind::Decoder,
        k => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad arch kind byte {k}"),
            ))
        }
    };
    let mut vals = [0usize; 7];
    for v in &mut vals {
        *v = read_u32(&mut r)? as usize;
    }
    let cfg = TransformerConfig {
        kind,
        vocab_size: vals[0],
        d_model: vals[1],
        n_layers: vals[2],
        n_heads: vals[3],
        n_kv_heads: vals[4],
        d_ff: vals[5],
        max_seq: vals[6],
    };
    // Build a structurally identical model, then overwrite weights by name.
    let mut model = TransformerLm::new(cfg, &mut Rng64::new(0));
    let n_params = read_u32(&mut r)? as usize;
    let mut loaded: std::collections::HashMap<String, Tensor> =
        std::collections::HashMap::with_capacity(n_params);
    for _ in 0..n_params {
        let name_len = read_u32(&mut r)? as usize;
        let mut name_buf = vec![0u8; name_len];
        r.read_exact(&mut name_buf)?;
        let name = String::from_utf8(name_buf)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let n_dims = read_u32(&mut r)? as usize;
        let mut dims = Vec::with_capacity(n_dims);
        for _ in 0..n_dims {
            dims.push(read_u32(&mut r)? as usize);
        }
        let len: usize = dims.iter().product();
        let mut data = vec![0f32; len];
        let mut buf = [0u8; 4];
        for x in &mut data {
            r.read_exact(&mut buf)?;
            *x = f32::from_le_bytes(buf);
        }
        loaded.insert(name, Tensor::from_vec(&dims, data));
    }
    for (name, p) in model.visit_params() {
        let t = loaded.remove(&name).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("missing parameter {name}"),
            )
        })?;
        if t.dims() != p.value.dims() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("shape mismatch for {name}"),
            ));
        }
        p.value = t;
    }
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::{AnyLinear, FactoredLinear};
    use lrd_tensor::tucker::tucker2;

    fn tiny_model(seed: u64) -> TransformerLm {
        let cfg = TransformerConfig {
            kind: ArchKind::Decoder,
            vocab_size: 10,
            d_model: 8,
            n_layers: 2,
            n_heads: 2,
            n_kv_heads: 2,
            d_ff: 16,
            max_seq: 8,
        };
        TransformerLm::new(cfg, &mut Rng64::new(seed))
    }

    #[test]
    fn roundtrip_preserves_outputs() {
        let dir = std::env::temp_dir().join("lrd_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m1.bin");
        let mut model = tiny_model(5);
        save_model(&path, &mut model).unwrap();
        let loaded = load_model(&path).unwrap();
        let tokens = [1usize, 2, 3, 4];
        assert!(model
            .logits(&tokens, 1)
            .approx_eq(&loaded.logits(&tokens, 1), 1e-6));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_factored_models() {
        let dir = std::env::temp_dir().join("lrd_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m2.bin");
        let mut model = tiny_model(6);
        {
            let mut slots = model.visit_linears();
            let (_, _, slot) = &mut slots[0];
            let w = slot.effective_weight();
            **slot =
                AnyLinear::Factored(FactoredLinear::from_tucker(tucker2(&w, 1).unwrap(), None));
        }
        let err = save_model(&path, &mut model).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn rejects_corrupt_magic() {
        let dir = std::env::temp_dir().join("lrd_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m3.bin");
        std::fs::write(&path, b"NOTACKPT____").unwrap();
        let err = load_model(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }
}
