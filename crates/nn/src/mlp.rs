//! Feed-forward blocks: BERT's GELU intermediate/output MLP and Llama 2's
//! SwiGLU gate/up/down MLP.
//!
//! The weight tensors here are the MLP-side decomposable tensors of the
//! paper (Fig. 4): `W_Int`/`W_O` for BERT and `W_G`/`W_U`/`W_D` for Llama.

use crate::act::{gelu, gelu_grad, silu, silu_grad};
use crate::linear::{AnyLinear, AnyLinearCache};
use crate::param::Param;
use lrd_tensor::rng::Rng64;
use lrd_tensor::Tensor;

/// Element-wise combine of two same-shaped activation tensors.
fn ew(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
    // lrd-lint: allow(no-panic, "both operands come from projections of the same input rows, so shapes always agree; a mismatch is an internal bug worth aborting on")
    a.zip(b, f).expect("shape")
}

/// BERT-style MLP: `y = W_O · gelu(W_Int · x)`.
#[derive(Debug, Clone, PartialEq)]
pub struct BertMlp {
    /// Intermediate projection `W_Int`, `d × d_ff`.
    pub intermediate: AnyLinear,
    /// Output projection `W_O`, `d_ff × d`.
    pub output: AnyLinear,
}

/// Cached forward state for [`BertMlp`].
#[derive(Debug, Clone)]
pub struct BertMlpCache {
    int_cache: AnyLinearCache,
    out_cache: AnyLinearCache,
    pre_act: Tensor,
}

impl BertMlp {
    /// Randomly initialized BERT MLP.
    pub fn new(d_model: usize, d_ff: usize, rng: &mut Rng64) -> Self {
        BertMlp {
            intermediate: AnyLinear::dense(d_model, d_ff, true, rng),
            output: AnyLinear::dense(d_ff, d_model, true, rng),
        }
    }

    /// Number of parameters.
    pub fn param_count(&self) -> usize {
        self.intermediate.param_count() + self.output.param_count()
    }

    /// Forward pass over `x (m × d)`.
    pub fn forward(&self, x: &Tensor) -> (Tensor, BertMlpCache) {
        let (pre_act, int_cache) = self.intermediate.forward(x);
        let h = pre_act.map(gelu);
        let (y, out_cache) = self.output.forward(&h);
        (
            y,
            BertMlpCache {
                int_cache,
                out_cache,
                pre_act,
            },
        )
    }

    /// Inference-only forward: intermediates are consumed, not cached.
    pub fn infer(&self, x: &Tensor) -> Tensor {
        let h = self.intermediate.infer(x).map(gelu);
        self.output.infer(&h)
    }

    /// Backward pass; returns `dx`.
    pub fn backward(&mut self, cache: &BertMlpCache, dy: &Tensor) -> Tensor {
        let dh = self.output.backward(&cache.out_cache, dy);
        let dpre = ew(&dh, &cache.pre_act, |g, x| g * gelu_grad(x));
        self.intermediate.backward(&cache.int_cache, &dpre)
    }

    /// Visits the two linear slots (decomposer hook).
    pub fn visit_linears<'a>(&'a mut self, out: &mut Vec<(&'static str, &'a mut AnyLinear)>) {
        out.push(("intermediate", &mut self.intermediate));
        out.push(("output", &mut self.output));
    }

    /// Visits parameters as `(name, param)` pairs.
    pub fn visit_params<'a>(&'a mut self, prefix: &str, out: &mut Vec<(String, &'a mut Param)>) {
        self.intermediate
            .visit_params(&format!("{prefix}.intermediate"), out);
        self.output.visit_params(&format!("{prefix}.output"), out);
    }
}

/// Llama-style SwiGLU MLP: `y = W_D · (silu(W_G · x) ⊙ (W_U · x))`.
#[derive(Debug, Clone, PartialEq)]
pub struct SwiGluMlp {
    /// Gate projection `W_G`, `d × d_ff`.
    pub gate: AnyLinear,
    /// Up projection `W_U`, `d × d_ff`.
    pub up: AnyLinear,
    /// Down projection `W_D`, `d_ff × d`.
    pub down: AnyLinear,
}

/// Cached forward state for [`SwiGluMlp`].
#[derive(Debug, Clone)]
pub struct SwiGluCache {
    gate_cache: AnyLinearCache,
    up_cache: AnyLinearCache,
    down_cache: AnyLinearCache,
    gate_pre: Tensor,
    up_out: Tensor,
}

impl SwiGluMlp {
    /// Randomly initialized SwiGLU MLP (Llama uses no biases).
    pub fn new(d_model: usize, d_ff: usize, rng: &mut Rng64) -> Self {
        SwiGluMlp {
            gate: AnyLinear::dense(d_model, d_ff, false, rng),
            up: AnyLinear::dense(d_model, d_ff, false, rng),
            down: AnyLinear::dense(d_ff, d_model, false, rng),
        }
    }

    /// Number of parameters.
    pub fn param_count(&self) -> usize {
        self.gate.param_count() + self.up.param_count() + self.down.param_count()
    }

    /// Forward pass over `x (m × d)`.
    pub fn forward(&self, x: &Tensor) -> (Tensor, SwiGluCache) {
        let (gate_pre, gate_cache) = self.gate.forward(x);
        let (up_out, up_cache) = self.up.forward(x);
        let h = ew(&gate_pre, &up_out, |g, u| silu(g) * u);
        let (y, down_cache) = self.down.forward(&h);
        (
            y,
            SwiGluCache {
                gate_cache,
                up_cache,
                down_cache,
                gate_pre,
                up_out,
            },
        )
    }

    /// Inference-only forward: intermediates are consumed, not cached.
    pub fn infer(&self, x: &Tensor) -> Tensor {
        let gate_pre = self.gate.infer(x);
        let up_out = self.up.infer(x);
        let h = ew(&gate_pre, &up_out, |g, u| silu(g) * u);
        self.down.infer(&h)
    }

    /// Backward pass; returns `dx`.
    pub fn backward(&mut self, cache: &SwiGluCache, dy: &Tensor) -> Tensor {
        let dh = self.down.backward(&cache.down_cache, dy);
        // h = silu(g) ⊙ u  ⇒  dg = dh ⊙ u ⊙ silu'(g),  du = dh ⊙ silu(g)
        let dgate = ew(
            &ew(&dh, &cache.up_out, |g, u| g * u),
            &cache.gate_pre,
            |g, pre| g * silu_grad(pre),
        );
        let dup = ew(&dh, &cache.gate_pre, |g, pre| g * silu(pre));
        let mut dx = self.gate.backward(&cache.gate_cache, &dgate);
        dx.axpy(1.0, &self.up.backward(&cache.up_cache, &dup));
        dx
    }

    /// Visits the three linear slots (decomposer hook).
    pub fn visit_linears<'a>(&'a mut self, out: &mut Vec<(&'static str, &'a mut AnyLinear)>) {
        out.push(("gate", &mut self.gate));
        out.push(("up", &mut self.up));
        out.push(("down", &mut self.down));
    }

    /// Visits parameters as `(name, param)` pairs.
    pub fn visit_params<'a>(&'a mut self, prefix: &str, out: &mut Vec<(String, &'a mut Param)>) {
        self.gate.visit_params(&format!("{prefix}.gate"), out);
        self.up.visit_params(&format!("{prefix}.up"), out);
        self.down.visit_params(&format!("{prefix}.down"), out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_dx(f: &dyn Fn(&Tensor) -> Tensor, x: &Tensor, dy: &Tensor, dx: &Tensor) {
        let h = 1e-2;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += h;
            let mut xm = x.clone();
            xm.data_mut()[i] -= h;
            let fd = (f(&xp).dot(dy) - f(&xm).dot(dy)) / (2.0 * h);
            assert!(
                (dx.data()[i] - fd).abs() < 3e-2,
                "dx[{i}]: {} vs {fd}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn bert_mlp_shapes() {
        let mut rng = Rng64::new(1);
        let mlp = BertMlp::new(8, 16, &mut rng);
        let x = Tensor::randn(&[3, 8], &mut rng);
        let (y, _) = mlp.forward(&x);
        assert_eq!(y.dims(), &[3, 8]);
        assert_eq!(mlp.param_count(), 8 * 16 + 16 + 16 * 8 + 8);
    }

    #[test]
    fn bert_mlp_backward_matches_fd() {
        let mut rng = Rng64::new(2);
        let mut mlp = BertMlp::new(6, 10, &mut rng);
        let x = Tensor::randn(&[2, 6], &mut rng);
        let dy = Tensor::randn(&[2, 6], &mut rng);
        let (_, c) = mlp.forward(&x);
        let dx = mlp.backward(&c, &dy);
        let mc = mlp.clone();
        check_dx(&|x| mc.forward(x).0, &x, &dy, &dx);
    }

    #[test]
    fn swiglu_shapes() {
        let mut rng = Rng64::new(3);
        let mlp = SwiGluMlp::new(8, 20, &mut rng);
        let x = Tensor::randn(&[4, 8], &mut rng);
        let (y, _) = mlp.forward(&x);
        assert_eq!(y.dims(), &[4, 8]);
        assert_eq!(mlp.param_count(), 3 * 8 * 20);
    }

    #[test]
    fn swiglu_backward_matches_fd() {
        let mut rng = Rng64::new(4);
        let mut mlp = SwiGluMlp::new(6, 12, &mut rng);
        let x = Tensor::randn(&[2, 6], &mut rng);
        let dy = Tensor::randn(&[2, 6], &mut rng);
        let (_, c) = mlp.forward(&x);
        let dx = mlp.backward(&c, &dy);
        let mc = mlp.clone();
        check_dx(&|x| mc.forward(x).0, &x, &dy, &dx);
    }

    #[test]
    fn swiglu_weight_grads_match_fd() {
        let mut rng = Rng64::new(5);
        let mut mlp = SwiGluMlp::new(4, 8, &mut rng);
        let x = Tensor::randn(&[3, 4], &mut rng);
        let dy = Tensor::randn(&[3, 4], &mut rng);
        let (_, c) = mlp.forward(&x);
        mlp.backward(&c, &dy);
        let gate_grads = match &mlp.gate {
            AnyLinear::Dense(l) => l.w.grad.clone(),
            _ => unreachable!(),
        };
        let h = 1e-2;
        for &i in &[0usize, 9, 21, 31] {
            let mut mp = mlp.clone();
            let mut mm = mlp.clone();
            if let (AnyLinear::Dense(lp), AnyLinear::Dense(lm)) = (&mut mp.gate, &mut mm.gate) {
                lp.w.value.data_mut()[i] += h;
                lm.w.value.data_mut()[i] -= h;
            }
            let fd = (mp.forward(&x).0.dot(&dy) - mm.forward(&x).0.dot(&dy)) / (2.0 * h);
            assert!((gate_grads.data()[i] - fd).abs() < 2e-2, "dWg[{i}]");
        }
    }

    #[test]
    fn visit_linears_names() {
        let mut rng = Rng64::new(6);
        let mut mlp = SwiGluMlp::new(4, 8, &mut rng);
        let mut slots = Vec::new();
        mlp.visit_linears(&mut slots);
        let names: Vec<_> = slots.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["gate", "up", "down"]);
    }
}
