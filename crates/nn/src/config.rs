//! Model architecture configuration.

/// The two transformer families studied by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArchKind {
    /// Bidirectional encoder (BERT): LayerNorm, learned positions, GELU
    /// intermediate/output MLP, post-norm residuals.
    Encoder,
    /// Causal decoder (Llama 2): RMSNorm, rotary positions, SwiGLU MLP,
    /// pre-norm residuals.
    Decoder,
}

/// Hyper-parameters of a [`crate::TransformerLm`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TransformerConfig {
    /// Encoder (BERT-style) or decoder (Llama-style).
    pub kind: ArchKind,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Hidden width.
    pub d_model: usize,
    /// Number of transformer blocks.
    pub n_layers: usize,
    /// Number of attention heads (`d_model` must be divisible by it).
    pub n_heads: usize,
    /// Number of key/value heads (grouped-query attention when smaller
    /// than `n_heads`; must divide `n_heads`).
    pub n_kv_heads: usize,
    /// Feed-forward inner width.
    pub d_ff: usize,
    /// Maximum sequence length.
    pub max_seq: usize,
}

impl TransformerConfig {
    /// Per-head dimension.
    pub fn head_dim(&self) -> usize {
        self.d_model / self.n_heads
    }

    /// Validates divisibility constraints.
    ///
    /// # Panics
    ///
    /// Panics on an inconsistent configuration; called by the model
    /// constructor.
    pub fn validate(&self) {
        assert!(
            self.d_model.is_multiple_of(self.n_heads),
            "d_model must divide by n_heads"
        );
        assert!(
            self.n_heads.is_multiple_of(self.n_kv_heads),
            "n_kv_heads must divide n_heads"
        );
        assert!(
            self.head_dim().is_multiple_of(2),
            "head_dim must be even for RoPE"
        );
        assert!(self.vocab_size > 0 && self.n_layers > 0 && self.max_seq > 0);
    }

    /// A Llama-2-style decoder scaled down for CPU training; 32 layers to
    /// mirror Llama2-7B's layer count (the layer-choice studies sweep all
    /// 32 positions).
    pub fn tiny_llama() -> Self {
        TransformerConfig {
            kind: ArchKind::Decoder,
            vocab_size: 256,
            d_model: 40,
            n_layers: 32,
            n_heads: 4,
            n_kv_heads: 4,
            d_ff: 112,
            max_seq: 64,
        }
    }

    /// A BERT-style encoder scaled down for CPU training; 12 layers to
    /// mirror BERT-Base.
    pub fn tiny_bert() -> Self {
        TransformerConfig {
            kind: ArchKind::Encoder,
            vocab_size: 256,
            d_model: 40,
            n_layers: 12,
            n_heads: 4,
            n_kv_heads: 4,
            d_ff: 160,
            max_seq: 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_configs_validate() {
        TransformerConfig::tiny_llama().validate();
        TransformerConfig::tiny_bert().validate();
    }

    #[test]
    fn head_dim() {
        let c = TransformerConfig::tiny_llama();
        assert_eq!(c.head_dim(), 10);
    }

    #[test]
    #[should_panic(expected = "d_model must divide")]
    fn invalid_heads_rejected() {
        let mut c = TransformerConfig::tiny_llama();
        c.n_heads = 7;
        c.validate();
    }
}
