//! Mini-batch training loop for [`TransformerLm`].

use crate::act::cross_entropy;
use crate::model::TransformerLm;
use crate::optim::{clip_global_norm, cosine_schedule, AdamW};

/// One training batch: batch-major flat `tokens` with per-position integer
/// `targets` (use [`crate::act::IGNORE_INDEX`] to mask positions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    /// Input token ids, length `batch · seq`.
    pub tokens: Vec<usize>,
    /// Target token ids, length `batch · seq`.
    pub targets: Vec<usize>,
    /// Number of sequences in the batch.
    pub batch: usize,
}

impl Batch {
    /// Builds a next-token-prediction batch from full sequences: inputs are
    /// `seq[..n-1]`, targets are `seq[1..]`.
    ///
    /// # Panics
    ///
    /// Panics if sequences have differing lengths or fewer than 2 tokens.
    pub fn next_token(sequences: &[Vec<usize>]) -> Batch {
        assert!(!sequences.is_empty(), "empty batch");
        let len = sequences[0].len();
        assert!(len >= 2, "sequences must have at least 2 tokens");
        let mut tokens = Vec::with_capacity(sequences.len() * (len - 1));
        let mut targets = Vec::with_capacity(sequences.len() * (len - 1));
        for s in sequences {
            assert_eq!(s.len(), len, "ragged batch");
            tokens.extend_from_slice(&s[..len - 1]);
            targets.extend_from_slice(&s[1..]);
        }
        Batch {
            tokens,
            targets,
            batch: sequences.len(),
        }
    }

    /// Builds a masked-language-model batch (BERT-style): each position is
    /// masked with probability `mask_prob` (replaced by `mask_token`) and
    /// becomes a prediction target; all other positions are ignored by the
    /// loss.
    ///
    /// At least one position per sequence is always masked so every
    /// sequence contributes gradient.
    ///
    /// # Panics
    ///
    /// Panics if sequences are empty or ragged, or `mask_prob` is not in
    /// `(0, 1]`.
    pub fn masked_lm(
        sequences: &[Vec<usize>],
        mask_token: usize,
        mask_prob: f64,
        rng: &mut lrd_tensor::rng::Rng64,
    ) -> Batch {
        assert!(!sequences.is_empty(), "empty batch");
        assert!(
            mask_prob > 0.0 && mask_prob <= 1.0,
            "mask_prob must be in (0, 1]"
        );
        let len = sequences[0].len();
        assert!(len >= 1, "sequences must be non-empty");
        let mut tokens = Vec::with_capacity(sequences.len() * len);
        let mut targets = Vec::with_capacity(sequences.len() * len);
        for s in sequences {
            assert_eq!(s.len(), len, "ragged batch");
            let base = tokens.len();
            let mut masked_any = false;
            for &t in s {
                if rng.uniform() < mask_prob {
                    tokens.push(mask_token);
                    targets.push(t);
                    masked_any = true;
                } else {
                    tokens.push(t);
                    targets.push(crate::act::IGNORE_INDEX);
                }
            }
            if !masked_any {
                let pos = rng.below(len);
                targets[base + pos] = tokens[base + pos];
                tokens[base + pos] = mask_token;
            }
        }
        Batch {
            tokens,
            targets,
            batch: sequences.len(),
        }
    }
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Peak learning rate.
    pub lr: f32,
    /// Linear warmup steps.
    pub warmup: usize,
    /// Total steps (for the cosine decay horizon).
    pub total_steps: usize,
    /// Global gradient-norm clip.
    pub clip: f32,
    /// AdamW weight decay.
    pub weight_decay: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            lr: 3e-3,
            warmup: 100,
            total_steps: 2000,
            clip: 1.0,
            weight_decay: 0.01,
        }
    }
}

/// Stateful trainer wrapping AdamW with a cosine schedule and clipping.
#[derive(Debug, Clone)]
pub struct Trainer {
    cfg: TrainConfig,
    opt: AdamW,
    step: usize,
}

impl Trainer {
    /// Creates a trainer with the given hyper-parameters.
    pub fn new(cfg: TrainConfig) -> Self {
        let opt = AdamW::new(cfg.lr).with_weight_decay(cfg.weight_decay);
        Trainer { cfg, opt, step: 0 }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> usize {
        self.step
    }

    /// Runs one optimization step on `batch`; returns the batch loss.
    pub fn step(&mut self, model: &mut TransformerLm, batch: &Batch) -> f32 {
        let (logits, cache) = model.forward(&batch.tokens, batch.batch);
        let (loss, dlogits) = cross_entropy(&logits, &batch.targets);
        model.backward(&cache, &dlogits);
        let mut params = model.visit_params();
        clip_global_norm(&mut params, self.cfg.clip);
        self.opt.lr = cosine_schedule(
            self.step,
            self.cfg.warmup,
            self.cfg.total_steps,
            self.cfg.lr,
        );
        self.opt.step(&mut params);
        self.step += 1;
        loss
    }

    /// Evaluates mean loss over a batch without updating weights.
    pub fn eval_loss(&self, model: &TransformerLm, batch: &Batch) -> f32 {
        let logits = model.logits(&batch.tokens, batch.batch);
        cross_entropy(&logits, &batch.targets).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ArchKind, TransformerConfig};
    use lrd_tensor::rng::Rng64;

    fn tiny_model(seed: u64) -> TransformerLm {
        let cfg = TransformerConfig {
            kind: ArchKind::Decoder,
            vocab_size: 12,
            d_model: 16,
            n_layers: 2,
            n_heads: 2,
            n_kv_heads: 2,
            d_ff: 32,
            max_seq: 10,
        };
        TransformerLm::new(cfg, &mut Rng64::new(seed))
    }

    #[test]
    fn masked_lm_batch_masks_and_targets() {
        use crate::act::IGNORE_INDEX;
        let mut rng = lrd_tensor::rng::Rng64::new(4);
        let seqs = vec![vec![5usize, 6, 7, 8]; 8];
        let b = Batch::masked_lm(&seqs, 9, 0.25, &mut rng);
        assert_eq!(b.tokens.len(), 32);
        let mut masked = 0;
        for (i, (&tok, &tgt)) in b.tokens.iter().zip(&b.targets).enumerate() {
            if tok == 9 {
                masked += 1;
                assert_eq!(tgt, seqs[i / 4][i % 4], "target must be the original token");
            } else {
                assert_eq!(tgt, IGNORE_INDEX);
                assert_eq!(tok, seqs[i / 4][i % 4]);
            }
        }
        assert!(
            masked >= 8,
            "each sequence masks at least one position, got {masked}"
        );
    }

    #[test]
    fn masked_lm_always_masks_at_least_one_per_sequence() {
        let mut rng = lrd_tensor::rng::Rng64::new(5);
        // With tiny probability, the forced mask still fires.
        let seqs = vec![vec![1usize, 2, 3]; 16];
        let b = Batch::masked_lm(&seqs, 9, 0.01, &mut rng);
        for s in 0..16 {
            let masked = (0..3).filter(|&i| b.tokens[s * 3 + i] == 9).count();
            assert!(masked >= 1, "sequence {s} has no masked position");
        }
    }

    #[test]
    fn mlm_training_reduces_loss_on_encoder() {
        use crate::config::{ArchKind, TransformerConfig};
        let cfg = TransformerConfig {
            kind: ArchKind::Encoder,
            vocab_size: 16,
            d_model: 16,
            n_layers: 2,
            n_heads: 2,
            n_kv_heads: 2,
            d_ff: 32,
            max_seq: 10,
        };
        let mut model = TransformerLm::new(cfg, &mut Rng64::new(3));
        let mut rng = lrd_tensor::rng::Rng64::new(7);
        // Deterministic sequences so masked positions are inferable from
        // bidirectional context.
        let seqs: Vec<Vec<usize>> = (0..6)
            .map(|s| (0..8).map(|i| (3 + s + i) % 16).collect())
            .collect();
        let mut trainer = Trainer::new(TrainConfig {
            lr: 5e-3,
            warmup: 5,
            total_steps: 200,
            clip: 1.0,
            weight_decay: 0.0,
        });
        let first = Batch::masked_lm(&seqs, 1, 0.3, &mut rng);
        let initial = trainer.eval_loss(&model, &first);
        for _ in 0..100 {
            let b = Batch::masked_lm(&seqs, 1, 0.3, &mut rng);
            trainer.step(&mut model, &b);
        }
        let fin = trainer.eval_loss(&model, &first);
        assert!(
            fin < initial * 0.6,
            "MLM loss did not improve: {initial} -> {fin}"
        );
    }

    #[test]
    fn batch_next_token_layout() {
        let b = Batch::next_token(&[vec![1, 2, 3, 4], vec![5, 6, 7, 8]]);
        assert_eq!(b.tokens, vec![1, 2, 3, 5, 6, 7]);
        assert_eq!(b.targets, vec![2, 3, 4, 6, 7, 8]);
        assert_eq!(b.batch, 2);
    }

    #[test]
    fn training_reduces_loss_on_fixed_pattern() {
        // Teach the model a deterministic cyclic sequence; the loss must
        // drop substantially — end-to-end check that forward+backward+Adam
        // all cooperate.
        let mut model = tiny_model(7);
        let seqs: Vec<Vec<usize>> = (0..4)
            .map(|s| (0..8).map(|i| (s + 2 * i) % 12).collect())
            .collect();
        let batch = Batch::next_token(&seqs);
        let mut trainer = Trainer::new(TrainConfig {
            lr: 5e-3,
            warmup: 5,
            total_steps: 300,
            clip: 1.0,
            weight_decay: 0.0,
        });
        let initial = trainer.eval_loss(&model, &batch);
        for _ in 0..120 {
            trainer.step(&mut model, &batch);
        }
        let fin = trainer.eval_loss(&model, &batch);
        assert!(
            fin < initial * 0.5,
            "loss did not improve: {initial} -> {fin}"
        );
    }

    #[test]
    fn eval_loss_does_not_change_weights() {
        let model = tiny_model(8);
        let batch = Batch::next_token(&[vec![1, 2, 3, 4]]);
        let trainer = Trainer::new(TrainConfig::default());
        let before = model.clone();
        let _ = trainer.eval_loss(&model, &batch);
        assert_eq!(model, before);
    }

    #[test]
    fn step_counter_advances() {
        let mut model = tiny_model(9);
        let batch = Batch::next_token(&[vec![1, 2, 3]]);
        let mut trainer = Trainer::new(TrainConfig::default());
        trainer.step(&mut model, &batch);
        trainer.step(&mut model, &batch);
        assert_eq!(trainer.steps(), 2);
    }
}
