//! Typed errors for the incremental decoding paths.
//!
//! Serving turns decode misuse (full KV caches, out-of-range tokens,
//! mismatched session batches) into failed requests rather than process
//! aborts, so the decode entry points return these instead of asserting.

use std::fmt;

/// Why an incremental decode step could not be applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Incremental decoding was requested on a non-decoder model.
    NotDecoder,
    /// A token id is outside the vocabulary.
    TokenOutOfRange {
        /// Offending token id.
        token: usize,
        /// Vocabulary size.
        vocab: usize,
    },
    /// A session's KV cache is at its hard `max_seq` bound.
    CacheFull {
        /// The bound the cache was created with.
        max_seq: usize,
    },
    /// The requested position disagrees with the cached context length.
    PositionMismatch {
        /// Position the caller asked to decode at.
        pos: usize,
        /// Positions already in the cache.
        cached: usize,
    },
    /// Batched-call operands disagree on the number of sessions, or a
    /// cached row has the wrong width.
    BatchMismatch {
        /// Which operand disagreed.
        what: &'static str,
        /// Expected count.
        expected: usize,
        /// Actual count.
        got: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::NotDecoder => {
                write!(f, "incremental decoding requires a decoder model")
            }
            DecodeError::TokenOutOfRange { token, vocab } => {
                write!(f, "token id {token} out of range (vocab {vocab})")
            }
            DecodeError::CacheFull { max_seq } => {
                write!(f, "KV cache full: context at max_seq bound {max_seq}")
            }
            DecodeError::PositionMismatch { pos, cached } => {
                write!(f, "decode position {pos} != cached length {cached}")
            }
            DecodeError::BatchMismatch {
                what,
                expected,
                got,
            } => {
                write!(f, "batched decode {what}: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}
