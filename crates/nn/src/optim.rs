//! Optimizers: AdamW and SGD with momentum, plus global gradient clipping.

use crate::param::Param;
use lrd_tensor::Tensor;
use std::collections::HashMap;

/// AdamW (Adam with decoupled weight decay).
#[derive(Debug, Clone)]
pub struct AdamW {
    /// Learning rate (can be reassigned per step by a schedule).
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Decoupled weight-decay coefficient.
    pub weight_decay: f32,
    t: u64,
    state: HashMap<String, (Tensor, Tensor)>,
}

impl AdamW {
    /// Creates an AdamW optimizer with standard betas.
    pub fn new(lr: f32) -> Self {
        AdamW {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            state: HashMap::new(),
        }
    }

    /// Sets the weight-decay coefficient (builder style).
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Applies one update step to the given named parameters and zeroes
    /// their gradients.
    pub fn step(&mut self, params: &mut [(String, &mut Param)]) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (name, p) in params.iter_mut() {
            let entry = self
                .state
                .entry(name.clone())
                .or_insert_with(|| (Tensor::zeros(p.value.dims()), Tensor::zeros(p.value.dims())));
            let (m, v) = entry;
            let g = p.grad.data();
            let mv = m.data_mut();
            let vv = v.data_mut();
            let w = p.value.data_mut();
            for i in 0..g.len() {
                mv[i] = self.beta1 * mv[i] + (1.0 - self.beta1) * g[i];
                vv[i] = self.beta2 * vv[i] + (1.0 - self.beta2) * g[i] * g[i];
                let mhat = mv[i] / bc1;
                let vhat = vv[i] / bc2;
                w[i] -= self.lr * (mhat / (vhat.sqrt() + self.eps) + self.weight_decay * w[i]);
            }
            p.zero_grad();
        }
    }

    /// Number of update steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

/// Plain SGD with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables).
    pub momentum: f32,
    state: HashMap<String, Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            state: HashMap::new(),
        }
    }

    /// Applies one update step and zeroes gradients.
    pub fn step(&mut self, params: &mut [(String, &mut Param)]) {
        for (name, p) in params.iter_mut() {
            if self.momentum > 0.0 {
                let buf = self
                    .state
                    .entry(name.clone())
                    .or_insert_with(|| Tensor::zeros(p.value.dims()));
                let bd = buf.data_mut();
                let g = p.grad.data();
                let w = p.value.data_mut();
                for i in 0..g.len() {
                    bd[i] = self.momentum * bd[i] + g[i];
                    w[i] -= self.lr * bd[i];
                }
            } else {
                let g = p.grad.data();
                let w = p.value.data_mut();
                for i in 0..g.len() {
                    w[i] -= self.lr * g[i];
                }
            }
            p.zero_grad();
        }
    }
}

/// Clips gradients to a maximum global L2 norm; returns the pre-clip norm.
pub fn clip_global_norm(params: &mut [(String, &mut Param)], max_norm: f32) -> f32 {
    let total: f64 = params
        .iter()
        .map(|(_, p)| {
            let n = p.grad_norm() as f64;
            n * n
        })
        .sum();
    let norm = total.sqrt() as f32;
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for (_, p) in params.iter_mut() {
            for g in p.grad.data_mut() {
                *g *= scale;
            }
        }
    }
    norm
}

/// Cosine learning-rate schedule with linear warmup.
pub fn cosine_schedule(step: usize, warmup: usize, total: usize, base_lr: f32) -> f32 {
    if step < warmup {
        return base_lr * (step + 1) as f32 / warmup as f32;
    }
    let progress = (step - warmup) as f32 / (total.saturating_sub(warmup)).max(1) as f32;
    let progress = progress.min(1.0);
    0.5 * base_lr * (1.0 + (std::f32::consts::PI * progress).cos())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_param() -> Param {
        Param::new(Tensor::from_vec(&[2], vec![5.0, -3.0]))
    }

    #[test]
    fn adamw_minimizes_quadratic() {
        // f(w) = ½‖w‖² ⇒ grad = w. AdamW should drive w toward 0.
        let mut p = quadratic_param();
        let mut opt = AdamW::new(0.1);
        for _ in 0..200 {
            let g = p.value.clone();
            p.accumulate(&g);
            let mut params = vec![("w".to_string(), &mut p)];
            opt.step(&mut params);
        }
        assert!(p.value.max_abs() < 0.05, "w = {:?}", p.value.data());
    }

    #[test]
    fn sgd_minimizes_quadratic() {
        let mut p = quadratic_param();
        let mut opt = Sgd::new(0.1, 0.9);
        for _ in 0..100 {
            let g = p.value.clone();
            p.accumulate(&g);
            let mut params = vec![("w".to_string(), &mut p)];
            opt.step(&mut params);
        }
        assert!(p.value.max_abs() < 0.05);
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut p = quadratic_param();
        p.accumulate(&Tensor::full(&[2], 1.0));
        let mut opt = AdamW::new(0.01);
        let mut params = vec![("w".to_string(), &mut p)];
        opt.step(&mut params);
        assert_eq!(p.grad, Tensor::zeros(&[2]));
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut p = Param::new(Tensor::full(&[4], 1.0));
        let mut opt = AdamW::new(0.0).with_weight_decay(0.1);
        // Zero gradient: only decay acts... but lr=0 disables everything, so
        // use a tiny lr and zero grads.
        opt.lr = 0.1;
        let before = p.value.data()[0];
        let mut params = vec![("w".to_string(), &mut p)];
        opt.step(&mut params);
        assert!(p.value.data()[0] < before);
    }

    #[test]
    fn clip_reduces_large_gradients() {
        let mut a = Param::new(Tensor::zeros(&[3]));
        a.accumulate(&Tensor::full(&[3], 10.0));
        let mut b = Param::new(Tensor::zeros(&[3]));
        b.accumulate(&Tensor::full(&[3], 10.0));
        let mut params = vec![("a".to_string(), &mut a), ("b".to_string(), &mut b)];
        let norm = clip_global_norm(&mut params, 1.0);
        assert!(norm > 20.0);
        let total: f32 = params
            .iter()
            .map(|(_, p)| p.grad_norm().powi(2))
            .sum::<f32>()
            .sqrt();
        assert!((total - 1.0).abs() < 1e-4);
    }

    #[test]
    fn clip_leaves_small_gradients() {
        let mut a = Param::new(Tensor::zeros(&[2]));
        a.accumulate(&Tensor::full(&[2], 0.1));
        let mut params = vec![("a".to_string(), &mut a)];
        clip_global_norm(&mut params, 5.0);
        assert!((params[0].1.grad.data()[0] - 0.1).abs() < 1e-7);
    }

    #[test]
    fn cosine_schedule_shape() {
        let base = 1.0;
        // Warmup ramps up.
        assert!(cosine_schedule(0, 10, 100, base) < cosine_schedule(9, 10, 100, base));
        // Peak at end of warmup.
        assert!((cosine_schedule(10, 10, 100, base) - base).abs() < 0.01);
        // Decays to ~0.
        assert!(cosine_schedule(99, 10, 100, base) < 0.01 * base + 1e-3);
        // Clamped beyond total.
        assert!(cosine_schedule(500, 10, 100, base) <= 1e-6);
    }
}
