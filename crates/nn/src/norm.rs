//! Normalization layers: LayerNorm (BERT) and RMSNorm (Llama 2).

use crate::param::Param;
use lrd_tensor::Tensor;

const EPS: f32 = 1e-5;

/// LayerNorm with learned scale and shift, applied row-wise.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerNorm {
    /// Scale γ, length `d`.
    pub gamma: Param,
    /// Shift β, length `d`.
    pub beta: Param,
}

/// Cached forward state for [`LayerNorm`].
#[derive(Debug, Clone)]
pub struct LayerNormCache {
    xhat: Tensor,
    inv_std: Vec<f32>,
}

impl LayerNorm {
    /// Identity-initialized LayerNorm over feature width `d`.
    pub fn new(d: usize) -> Self {
        LayerNorm {
            gamma: Param::new(Tensor::full(&[d], 1.0)),
            beta: Param::zeros(&[d]),
        }
    }

    /// Number of parameters (2·d).
    pub fn param_count(&self) -> usize {
        self.gamma.len() + self.beta.len()
    }

    /// Row-wise normalization of `x (m × d)`.
    pub fn forward(&self, x: &Tensor) -> (Tensor, LayerNormCache) {
        let (m, d) = (x.rows(), x.cols());
        let mut out = Tensor::zeros(&[m, d]);
        let mut xhat = Tensor::zeros(&[m, d]);
        let mut inv_std = Vec::with_capacity(m);
        let g = self.gamma.value.data();
        let b = self.beta.value.data();
        for i in 0..m {
            let row = x.row(i);
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let istd = 1.0 / (var + EPS).sqrt();
            inv_std.push(istd);
            let hrow = xhat.row_mut(i);
            for (j, &v) in row.iter().enumerate() {
                hrow[j] = (v - mean) * istd;
            }
            let orow = out.row_mut(i);
            for j in 0..d {
                orow[j] = xhat.get(&[i, j]) * g[j] + b[j];
            }
        }
        (out, LayerNormCache { xhat, inv_std })
    }

    /// Inference-only forward.
    pub fn infer(&self, x: &Tensor) -> Tensor {
        self.forward(x).0
    }

    /// Backward pass; returns `dx`.
    pub fn backward(&mut self, cache: &LayerNormCache, dy: &Tensor) -> Tensor {
        let (m, d) = (dy.rows(), dy.cols());
        let g = self.gamma.value.data().to_vec();
        let mut dgamma = Tensor::zeros(&[d]);
        let mut dbeta = Tensor::zeros(&[d]);
        let mut dx = Tensor::zeros(&[m, d]);
        for i in 0..m {
            let dyrow = dy.row(i);
            let hrow = cache.xhat.row(i);
            for j in 0..d {
                dgamma.data_mut()[j] += dyrow[j] * hrow[j];
                dbeta.data_mut()[j] += dyrow[j];
            }
            // dxhat = dy * gamma
            let dxhat: Vec<f32> = (0..d).map(|j| dyrow[j] * g[j]).collect();
            let sum_dxhat: f32 = dxhat.iter().sum();
            let sum_dxhat_xhat: f32 = dxhat.iter().zip(hrow).map(|(&a, &b)| a * b).sum();
            let istd = cache.inv_std[i];
            let xrow = dx.row_mut(i);
            for j in 0..d {
                xrow[j] =
                    istd / d as f32 * (d as f32 * dxhat[j] - sum_dxhat - hrow[j] * sum_dxhat_xhat);
            }
        }
        self.gamma.accumulate(&dgamma);
        self.beta.accumulate(&dbeta);
        dx
    }

    /// Visits parameters as `(name, param)` pairs.
    pub fn visit_params<'a>(&'a mut self, prefix: &str, out: &mut Vec<(String, &'a mut Param)>) {
        out.push((format!("{prefix}.gamma"), &mut self.gamma));
        out.push((format!("{prefix}.beta"), &mut self.beta));
    }
}

/// RMSNorm (no mean subtraction, no shift), as used by Llama 2.
#[derive(Debug, Clone, PartialEq)]
pub struct RmsNorm {
    /// Scale γ, length `d`.
    pub gamma: Param,
}

/// Cached forward state for [`RmsNorm`].
#[derive(Debug, Clone)]
pub struct RmsNormCache {
    x: Tensor,
    inv_rms: Vec<f32>,
}

impl RmsNorm {
    /// Identity-initialized RMSNorm over feature width `d`.
    pub fn new(d: usize) -> Self {
        RmsNorm {
            gamma: Param::new(Tensor::full(&[d], 1.0)),
        }
    }

    /// Number of parameters (d).
    pub fn param_count(&self) -> usize {
        self.gamma.len()
    }

    /// Row-wise normalization `y = γ ⊙ x / rms(x)`.
    pub fn forward(&self, x: &Tensor) -> (Tensor, RmsNormCache) {
        let (m, d) = (x.rows(), x.cols());
        let mut out = Tensor::zeros(&[m, d]);
        let mut inv_rms = Vec::with_capacity(m);
        let g = self.gamma.value.data();
        for i in 0..m {
            let row = x.row(i);
            let ms = row.iter().map(|&v| v * v).sum::<f32>() / d as f32;
            let irms = 1.0 / (ms + EPS).sqrt();
            inv_rms.push(irms);
            let orow = out.row_mut(i);
            for j in 0..d {
                orow[j] = row[j] * irms * g[j];
            }
        }
        (
            out,
            RmsNormCache {
                x: x.clone(),
                inv_rms,
            },
        )
    }

    /// Inference-only forward.
    pub fn infer(&self, x: &Tensor) -> Tensor {
        self.forward(x).0
    }

    /// Backward pass; returns `dx`.
    pub fn backward(&mut self, cache: &RmsNormCache, dy: &Tensor) -> Tensor {
        let (m, d) = (dy.rows(), dy.cols());
        let g = self.gamma.value.data().to_vec();
        let mut dgamma = Tensor::zeros(&[d]);
        let mut dx = Tensor::zeros(&[m, d]);
        for i in 0..m {
            let dyrow = dy.row(i);
            let xrow = cache.x.row(i);
            let irms = cache.inv_rms[i];
            for j in 0..d {
                dgamma.data_mut()[j] += dyrow[j] * xrow[j] * irms;
            }
            // dx = irms * g⊙dy − irms³/d · x · Σ(g⊙dy⊙x)
            let dot: f32 = (0..d).map(|j| g[j] * dyrow[j] * xrow[j]).sum();
            let coef = irms * irms * irms / d as f32 * dot;
            let oxrow = dx.row_mut(i);
            for j in 0..d {
                oxrow[j] = irms * g[j] * dyrow[j] - coef * xrow[j];
            }
        }
        self.gamma.accumulate(&dgamma);
        dx
    }

    /// Visits parameters as `(name, param)` pairs.
    pub fn visit_params<'a>(&'a mut self, prefix: &str, out: &mut Vec<(String, &'a mut Param)>) {
        out.push((format!("{prefix}.gamma"), &mut self.gamma));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrd_tensor::rng::Rng64;

    #[test]
    fn layernorm_normalizes_rows() {
        let mut rng = Rng64::new(1);
        let ln = LayerNorm::new(16);
        let x = Tensor::randn_scaled(&[4, 16], 3.0, &mut rng);
        let (y, _) = ln.forward(&x);
        for i in 0..4 {
            let mean: f32 = y.row(i).iter().sum::<f32>() / 16.0;
            let var: f32 = y
                .row(i)
                .iter()
                .map(|&v| (v - mean) * (v - mean))
                .sum::<f32>()
                / 16.0;
            assert!(mean.abs() < 1e-4);
            assert!((var - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn rmsnorm_unit_rms() {
        let mut rng = Rng64::new(2);
        let rn = RmsNorm::new(12);
        let x = Tensor::randn_scaled(&[3, 12], 5.0, &mut rng);
        let (y, _) = rn.forward(&x);
        for i in 0..3 {
            let ms: f32 = y.row(i).iter().map(|&v| v * v).sum::<f32>() / 12.0;
            assert!((ms - 1.0).abs() < 1e-2, "rms² = {ms}");
        }
    }

    fn check_dx(
        forward: &dyn Fn(&Tensor) -> Tensor,
        x: &Tensor,
        dy: &Tensor,
        dx: &Tensor,
        tol: f32,
    ) {
        let h = 1e-2;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += h;
            let mut xm = x.clone();
            xm.data_mut()[i] -= h;
            let fd = (forward(&xp).dot(dy) - forward(&xm).dot(dy)) / (2.0 * h);
            assert!(
                (dx.data()[i] - fd).abs() < tol,
                "dx[{i}]: {} vs {fd}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn layernorm_backward_matches_finite_difference() {
        let mut rng = Rng64::new(3);
        let mut ln = LayerNorm::new(6);
        // Non-trivial gamma/beta.
        ln.gamma.value = Tensor::randn(&[6], &mut rng).map(|v| 1.0 + 0.3 * v);
        ln.beta.value = Tensor::randn(&[6], &mut rng);
        let x = Tensor::randn(&[3, 6], &mut rng);
        let dy = Tensor::randn(&[3, 6], &mut rng);
        let (_, cache) = ln.forward(&x);
        let dx = ln.backward(&cache, &dy);
        let lc = ln.clone();
        check_dx(&|x| lc.forward(x).0, &x, &dy, &dx, 2e-2);
    }

    #[test]
    fn layernorm_param_grads_match_finite_difference() {
        let mut rng = Rng64::new(4);
        let mut ln = LayerNorm::new(5);
        let x = Tensor::randn(&[2, 5], &mut rng);
        let dy = Tensor::randn(&[2, 5], &mut rng);
        let (_, cache) = ln.forward(&x);
        ln.backward(&cache, &dy);
        let h = 1e-2;
        for j in 0..5 {
            let mut lp = ln.clone();
            lp.gamma.value.data_mut()[j] += h;
            let mut lm = ln.clone();
            lm.gamma.value.data_mut()[j] -= h;
            let fd = (lp.forward(&x).0.dot(&dy) - lm.forward(&x).0.dot(&dy)) / (2.0 * h);
            assert!((ln.gamma.grad.data()[j] - fd).abs() < 1e-2, "dgamma[{j}]");
        }
    }

    #[test]
    fn rmsnorm_backward_matches_finite_difference() {
        let mut rng = Rng64::new(5);
        let mut rn = RmsNorm::new(7);
        rn.gamma.value = Tensor::randn(&[7], &mut rng).map(|v| 1.0 + 0.2 * v);
        let x = Tensor::randn(&[3, 7], &mut rng);
        let dy = Tensor::randn(&[3, 7], &mut rng);
        let (_, cache) = rn.forward(&x);
        let dx = rn.backward(&cache, &dy);
        let rc = rn.clone();
        check_dx(&|x| rc.forward(x).0, &x, &dy, &dx, 2e-2);
    }

    #[test]
    fn rmsnorm_gamma_grad_matches_finite_difference() {
        let mut rng = Rng64::new(6);
        let mut rn = RmsNorm::new(4);
        let x = Tensor::randn(&[2, 4], &mut rng);
        let dy = Tensor::randn(&[2, 4], &mut rng);
        let (_, cache) = rn.forward(&x);
        rn.backward(&cache, &dy);
        let h = 1e-2;
        for j in 0..4 {
            let mut rp = rn.clone();
            rp.gamma.value.data_mut()[j] += h;
            let mut rm = rn.clone();
            rm.gamma.value.data_mut()[j] -= h;
            let fd = (rp.forward(&x).0.dot(&dy) - rm.forward(&x).0.dot(&dy)) / (2.0 * h);
            assert!((rn.gamma.grad.data()[j] - fd).abs() < 1e-2, "dgamma[{j}]");
        }
    }

    #[test]
    fn scale_invariance_of_rmsnorm() {
        let mut rng = Rng64::new(7);
        let rn = RmsNorm::new(8);
        let x = Tensor::randn(&[2, 8], &mut rng);
        let y1 = rn.infer(&x);
        let y2 = rn.infer(&x.scale(10.0));
        assert!(y1.approx_eq(&y2, 1e-3));
    }
}
