//! Trainable parameters: a value tensor paired with a gradient accumulator.

use lrd_tensor::rng::Rng64;
use lrd_tensor::Tensor;

/// A trainable parameter: the weight values plus an accumulated gradient of
/// the same shape.
///
/// Layers accumulate into [`Param::grad`] during their backward pass; the
/// optimizer consumes and zeroes it.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Current weight values.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
}

impl Param {
    /// Wraps an existing tensor as a parameter with zeroed gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.dims());
        Param { value, grad }
    }

    /// Zero-initialized parameter (used for biases).
    pub fn zeros(dims: &[usize]) -> Self {
        Param::new(Tensor::zeros(dims))
    }

    /// Gaussian initialization with explicit standard deviation.
    pub fn randn(dims: &[usize], std: f32, rng: &mut Rng64) -> Self {
        Param::new(Tensor::randn_scaled(dims, std, rng))
    }

    /// Xavier/Glorot initialization for a `fan_in × fan_out` weight matrix:
    /// `std = sqrt(2 / (fan_in + fan_out))`.
    pub fn xavier(fan_in: usize, fan_out: usize, rng: &mut Rng64) -> Self {
        let std = (2.0 / (fan_in + fan_out) as f32).sqrt();
        Param::randn(&[fan_in, fan_out], std, rng)
    }

    /// Number of scalar weights.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty (never true for constructed params).
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Resets the accumulated gradient to zero.
    pub fn zero_grad(&mut self) {
        for g in self.grad.data_mut() {
            *g = 0.0;
        }
    }

    /// Adds `g` into the gradient accumulator.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn accumulate(&mut self, g: &Tensor) {
        self.grad.axpy(1.0, g);
    }

    /// The L2 norm of the accumulated gradient.
    pub fn grad_norm(&self) -> f32 {
        self.grad.frobenius_norm()
    }
}

/// A named view over the mutable parameters of a module, used by optimizers
/// and checkpointing. Collected via `visit_params`-style methods on layers.
pub type ParamRefs<'a> = Vec<(&'a str, &'a mut Param)>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new(Tensor::full(&[2, 3], 1.5));
        assert_eq!(p.grad, Tensor::zeros(&[2, 3]));
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn accumulate_and_zero() {
        let mut p = Param::zeros(&[2, 2]);
        p.accumulate(&Tensor::full(&[2, 2], 2.0));
        p.accumulate(&Tensor::full(&[2, 2], 1.0));
        assert_eq!(p.grad, Tensor::full(&[2, 2], 3.0));
        assert!((p.grad_norm() - 6.0).abs() < 1e-6);
        p.zero_grad();
        assert_eq!(p.grad, Tensor::zeros(&[2, 2]));
    }

    #[test]
    fn xavier_scale() {
        let mut rng = Rng64::new(1);
        let p = Param::xavier(256, 256, &mut rng);
        let std = (p
            .value
            .data()
            .iter()
            .map(|&x| (x as f64).powi(2))
            .sum::<f64>()
            / p.len() as f64)
            .sqrt();
        let expect = (2.0 / 512.0f64).sqrt();
        assert!((std - expect).abs() / expect < 0.1, "std {std} vs {expect}");
    }
}
