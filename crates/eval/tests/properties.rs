//! Property-based tests for the benchmark suite and corpus.

use lrd_eval::corpus::CorpusBuilder;
use lrd_eval::sample::ScoringMode;
use lrd_eval::tasks::{registry, Gsm8k};
use lrd_eval::vocab;
use lrd_eval::World;
use lrd_tensor::rng::Rng64;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_benchmark_sample_is_well_formed(world_seed in any::<u64>(), sample_seed in any::<u64>()) {
        let world = World::new(world_seed);
        let mut rng = Rng64::new(sample_seed);
        for bench in registry() {
            let s = bench.sample(&world, &mut rng);
            // All tokens in vocabulary.
            for &t in s.prompt.iter().chain(s.choices.iter().flatten()).chain(&s.reference) {
                prop_assert!(t < vocab::VOCAB_SIZE, "{}: token {t} out of range", bench.name());
            }
            match bench.scoring() {
                ScoringMode::MultipleChoice => {
                    prop_assert!(s.choices.len() >= 2);
                    prop_assert!(s.answer < s.choices.len());
                    // Choices distinct.
                    for i in 0..s.choices.len() {
                        for j in (i + 1)..s.choices.len() {
                            prop_assert_ne!(&s.choices[i], &s.choices[j]);
                        }
                    }
                    // Fits the tiny models' context.
                    let max_choice = s.choices.iter().map(Vec::len).max().unwrap();
                    prop_assert!(s.prompt.len() + max_choice <= 64);
                }
                ScoringMode::ExactMatch => {
                    prop_assert!(!s.reference.is_empty());
                    prop_assert!(s.prompt.len() + s.reference.len() <= 64);
                }
                ScoringMode::Cloze => {
                    prop_assert!(s.prompt.contains(&vocab::MASK));
                    prop_assert!(s.choices.iter().all(|c| c.len() == 1));
                }
            }
        }
    }

    #[test]
    fn sample_sets_are_deterministic(world_seed in any::<u64>(), eval_seed in any::<u64>()) {
        let world = World::new(world_seed);
        for bench in registry() {
            let a = bench.samples(&world, 5, eval_seed);
            let b = bench.samples(&world, 5, eval_seed);
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn corpus_sequences_are_valid(world_seed in any::<u64>(), corpus_seed in any::<u64>()) {
        let world = World::new(world_seed);
        let mut c = CorpusBuilder::new(world, corpus_seed, 48);
        for _ in 0..5 {
            let s = c.sequence();
            prop_assert_eq!(s.len(), 49);
            prop_assert!(s.iter().all(|&t| t < vocab::VOCAB_SIZE));
        }
    }

    #[test]
    fn gsm8k_shots_are_arithmetically_correct(a in 0usize..10, b in 0usize..10) {
        let shot = Gsm8k::shot(a, b);
        prop_assert_eq!(shot.len(), 6);
        let sum = vocab::as_digit(shot[4]).unwrap();
        prop_assert_eq!(sum, (a + b) % 10);
    }

    #[test]
    fn world_facts_stable_under_repeated_query(seed in any::<u64>(), e in 0usize..vocab::N_ENTITIES) {
        let w = World::new(seed);
        for r in vocab::N_ENTITY_RELATIONS..vocab::N_RELATIONS {
            prop_assert_eq!(w.value_fact(e, r), w.value_fact(e, r));
            prop_assert!(w.value_fact(e, r) < vocab::N_VALUES);
            prop_assert_ne!(w.misconception(e, r), w.value_fact(e, r));
        }
        for r in 0..vocab::N_ENTITY_RELATIONS {
            prop_assert!(w.entity_fact(e, r) < vocab::N_ENTITIES);
        }
    }
}
