//! Training-corpus builder.
//!
//! The corpus realizes each benchmark's difficulty profile through mixing
//! weights: heavily repeated single-hop facts (ARC-Easy), skewed per-domain
//! exposure (MMLU), rare 2-hop statements (ARC-Challenge), misconceptions
//! stated more often than truths (TruthfulQA), context-dependent selection
//! patterns (WinoGrande), stories (HellaSwag), and modular arithmetic with
//! held-out pairs (GSM8K).

use crate::tasks::{Gsm8k, HellaSwag};
use crate::vocab::{self, N_DOMAINS, N_ENTITIES, N_ENTITY_RELATIONS, N_RELATIONS};
use crate::world::World;
use lrd_nn::train::Batch;
use lrd_tensor::rng::Rng64;

/// Kinds of training statements and their mixing weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StatementKind {
    /// Single-hop fact in query form, for a specific domain.
    FactQuery(usize),
    /// Single-hop fact in plain declarative form, for a specific domain.
    FactPlain(usize),
    /// Entity-to-entity hop statement (first hop of 2-hop queries).
    EntityHop,
    /// Full 2-hop query statement (rare — ARC-Challenge difficulty).
    TwoHopQuery,
    /// HellaSwag-style two-fact story.
    Story,
    /// WinoGrande-style property-selection statement.
    Wino,
    /// GSM8K-style arithmetic example.
    Arithmetic,
}

/// Per-domain fact exposure weights (domain 0 is the ARC-Easy domain).
const DOMAIN_WEIGHTS: [u32; N_DOMAINS] = [10, 6, 5, 3, 2, 1];

/// Remaining statement weights.
const ENTITY_HOP_WEIGHT: u32 = 5;
const TWO_HOP_WEIGHT: u32 = 2;
const STORY_WEIGHT: u32 = 5;
const WINO_WEIGHT: u32 = 6;
// Arithmetic needs an order of magnitude more exposures per item than
// fact recall (digit tokens serve operand and answer roles), so it gets
// the largest share.
const ARITH_WEIGHT: u32 = 30;

/// Probability (out of 4) that a contested fact is stated as its popular
/// misconception rather than the truth.
const LIE_NUMERATOR: usize = 3;

/// Deterministic training-corpus generator for a [`World`].
#[derive(Debug, Clone)]
pub struct CorpusBuilder {
    world: World,
    rng: Rng64,
    /// Sequence length of emitted training sequences (+1 for the shifted
    /// target).
    pub seq_len: usize,
    kinds: Vec<(StatementKind, u32)>,
    total_weight: u32,
}

impl CorpusBuilder {
    /// Creates a corpus builder with the standard mixing weights.
    pub fn new(world: World, seed: u64, seq_len: usize) -> Self {
        let mut kinds = Vec::new();
        for (d, &w) in DOMAIN_WEIGHTS.iter().enumerate() {
            // Split each domain's exposure between query and plain forms so
            // the model sees the benchmark prompt format.
            kinds.push((StatementKind::FactQuery(d), w));
            kinds.push((StatementKind::FactPlain(d), w.div_ceil(2)));
        }
        kinds.push((StatementKind::EntityHop, ENTITY_HOP_WEIGHT));
        kinds.push((StatementKind::TwoHopQuery, TWO_HOP_WEIGHT));
        kinds.push((StatementKind::Story, STORY_WEIGHT));
        kinds.push((StatementKind::Wino, WINO_WEIGHT));
        kinds.push((StatementKind::Arithmetic, ARITH_WEIGHT));
        let total_weight = kinds.iter().map(|&(_, w)| w).sum();
        CorpusBuilder {
            world,
            rng: Rng64::new(seed ^ 0xC0B5_0521),
            seq_len,
            kinds,
            total_weight,
        }
    }

    fn draw_kind(&mut self) -> StatementKind {
        let mut pick = (self.rng.next_u64() % self.total_weight as u64) as u32;
        for &(kind, w) in &self.kinds {
            if pick < w {
                return kind;
            }
            pick -= w;
        }
        self.kinds[0].0
    }

    fn relation_in_domain(&mut self, domain: usize) -> usize {
        loop {
            let r = N_ENTITY_RELATIONS + self.rng.below(N_RELATIONS - N_ENTITY_RELATIONS);
            if vocab::domain_of_relation(r) == domain {
                return r;
            }
        }
    }

    /// The value stated for `(e, r)` in the corpus: truth for ordinary
    /// facts, the popular misconception ¾ of the time for contested ones.
    fn stated_value(&mut self, e: usize, r: usize) -> usize {
        if self.world.is_contested(e, r) && self.rng.below(4) < LIE_NUMERATOR {
            self.world.misconception(e, r)
        } else {
            self.world.value_fact(e, r)
        }
    }

    /// Emits one training statement.
    fn statement(&mut self) -> Vec<usize> {
        match self.draw_kind() {
            StatementKind::FactQuery(d) => {
                let e = self.rng.below(N_ENTITIES);
                let r = self.relation_in_domain(d);
                let v = self.stated_value(e, r);
                vec![
                    vocab::BOS,
                    vocab::QUERY,
                    vocab::entity(e),
                    vocab::relation(r),
                    vocab::SEP,
                    vocab::value(v),
                    vocab::EOS,
                ]
            }
            StatementKind::FactPlain(d) => {
                let e = self.rng.below(N_ENTITIES);
                let r = self.relation_in_domain(d);
                let v = self.stated_value(e, r);
                vec![
                    vocab::BOS,
                    vocab::entity(e),
                    vocab::relation(r),
                    vocab::SEP,
                    vocab::value(v),
                    vocab::EOS,
                ]
            }
            StatementKind::EntityHop => {
                let e = self.rng.below(N_ENTITIES);
                let r = self.rng.below(N_ENTITY_RELATIONS);
                self.world.entity_statement(e, r)
            }
            StatementKind::TwoHopQuery => {
                let e = self.rng.below(N_ENTITIES);
                let r1 = self.rng.below(N_ENTITY_RELATIONS);
                let r2 = N_ENTITY_RELATIONS + self.rng.below(N_RELATIONS - N_ENTITY_RELATIONS);
                let v = self.world.two_hop_fact(e, r1, r2);
                vec![
                    vocab::BOS,
                    vocab::QUERY,
                    vocab::entity(e),
                    vocab::relation(r1),
                    vocab::relation(r2),
                    vocab::SEP,
                    vocab::value(v),
                    vocab::EOS,
                ]
            }
            StatementKind::Story => {
                let e = self.rng.below(N_ENTITIES);
                let ra = self.relation_in_domain(1);
                let rb = self.relation_in_domain(2);
                let mut s = vec![
                    vocab::BOS,
                    vocab::entity(e),
                    vocab::relation(ra),
                    vocab::relation(rb),
                    vocab::SEP,
                ];
                s.extend(HellaSwag::continuation(&self.world, e, ra, rb));
                s
            }
            StatementKind::Wino => {
                let r = self.rng.below(N_ENTITY_RELATIONS);
                let e_yes = loop {
                    let e = self.rng.below(N_ENTITIES);
                    if self.world.has_property(e, r) {
                        break e;
                    }
                };
                let e_no = loop {
                    let e = self.rng.below(N_ENTITIES);
                    if e != e_yes && !self.world.has_property(e, r) {
                        break e;
                    }
                };
                let yes_first = self.rng.below(2) == 0;
                let (e1, e2) = if yes_first {
                    (e_yes, e_no)
                } else {
                    (e_no, e_yes)
                };
                vec![
                    vocab::BOS,
                    vocab::entity(e1),
                    vocab::entity(e2),
                    vocab::relation(r),
                    vocab::SEP,
                    vocab::entity(e_yes),
                    vocab::EOS,
                ]
            }
            StatementKind::Arithmetic => {
                // Only non-held-out pairs appear in training.
                let (a, b) = loop {
                    let (a, b) = (self.rng.below(10), self.rng.below(10));
                    if !self.world.arithmetic_holdout(a, b) {
                        break (a, b);
                    }
                };
                Gsm8k::shot(a, b)
            }
        }
    }

    /// Emits one fixed-length training sequence (`seq_len + 1` tokens, so
    /// [`Batch::next_token`] yields `seq_len` positions) by packing
    /// statements back to back.
    pub fn sequence(&mut self) -> Vec<usize> {
        let mut seq = Vec::with_capacity(self.seq_len + 8);
        while seq.len() < self.seq_len + 1 {
            seq.extend(self.statement());
        }
        seq.truncate(self.seq_len + 1);
        seq
    }

    /// Emits a next-token training batch of `batch_size` sequences.
    pub fn batch(&mut self, batch_size: usize) -> Batch {
        let seqs: Vec<Vec<usize>> = (0..batch_size).map(|_| self.sequence()).collect();
        Batch::next_token(&seqs)
    }

    /// Emits a masked-language-model batch (BERT-style pre-training):
    /// `mask_prob` of positions are replaced by [`vocab::MASK`] and become
    /// the only loss targets.
    pub fn mlm_batch(&mut self, batch_size: usize, mask_prob: f64) -> Batch {
        let seqs: Vec<Vec<usize>> = (0..batch_size).map(|_| self.sequence()).collect();
        let mut rng = self.rng.fork();
        Batch::masked_lm(&seqs, vocab::MASK, mask_prob, &mut rng)
    }

    /// Emits a cloze-style MLM batch: only *answer slots* (the token
    /// following each [`vocab::SEP`]) are candidates for masking, each
    /// masked with probability ½. This is the span-focused objective BERT
    /// fine-tuning uses in practice (predicting answers, not arbitrary
    /// tokens) and is what the cloze probe evaluates.
    pub fn cloze_batch(&mut self, batch_size: usize) -> Batch {
        let seqs: Vec<Vec<usize>> = (0..batch_size).map(|_| self.sequence()).collect();
        let mut rng = self.rng.fork();
        let seq_len = seqs[0].len();
        let mut tokens = Vec::with_capacity(batch_size * seq_len);
        let mut targets = Vec::with_capacity(batch_size * seq_len);
        for s in &seqs {
            let base = tokens.len();
            let mut masked_any = false;
            for (i, &t) in s.iter().enumerate() {
                let answer_slot = i > 0 && s[i - 1] == vocab::SEP;
                if answer_slot && rng.below(2) == 0 {
                    tokens.push(vocab::MASK);
                    targets.push(t);
                    masked_any = true;
                } else {
                    tokens.push(t);
                    targets.push(lrd_nn::act::IGNORE_INDEX);
                }
            }
            if !masked_any {
                // Force-mask the first answer slot (or the middle token if
                // the packing window contains no SEP).
                let pos = s
                    .iter()
                    .enumerate()
                    .skip(1)
                    .find(|&(i, _)| s[i - 1] == vocab::SEP)
                    .map(|(i, _)| i)
                    .unwrap_or(seq_len / 2);
                targets[base + pos] = tokens[base + pos];
                tokens[base + pos] = vocab::MASK;
            }
        }
        Batch {
            tokens,
            targets,
            batch: batch_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_have_fixed_length() {
        let mut c = CorpusBuilder::new(World::new(1), 2, 48);
        for _ in 0..10 {
            assert_eq!(c.sequence().len(), 49);
        }
    }

    #[test]
    fn corpus_is_deterministic() {
        let mut a = CorpusBuilder::new(World::new(1), 7, 32);
        let mut b = CorpusBuilder::new(World::new(1), 7, 32);
        for _ in 0..5 {
            assert_eq!(a.sequence(), b.sequence());
        }
    }

    #[test]
    fn all_tokens_in_vocab() {
        let mut c = CorpusBuilder::new(World::new(3), 5, 64);
        for _ in 0..50 {
            for &t in &c.sequence() {
                assert!(t < vocab::VOCAB_SIZE);
            }
        }
    }

    #[test]
    fn batch_layout() {
        let mut c = CorpusBuilder::new(World::new(4), 9, 24);
        let b = c.batch(4);
        assert_eq!(b.batch, 4);
        assert_eq!(b.tokens.len(), 4 * 24);
        assert_eq!(b.targets.len(), 4 * 24);
    }

    #[test]
    fn cloze_batch_masks_only_answer_slots() {
        let mut c = CorpusBuilder::new(World::new(9), 3, 40);
        let b = c.cloze_batch(6);
        // Sequences carry seq_len + 1 tokens (no next-token shift in MLM).
        assert_eq!(b.tokens.len(), 6 * 41);
        let mut masked = 0;
        for (i, (&tok, &tgt)) in b.tokens.iter().zip(&b.targets).enumerate() {
            if tok == vocab::MASK {
                masked += 1;
                assert_ne!(tgt, lrd_nn::act::IGNORE_INDEX);
            } else if i % 41 != 0 {
                // Unmasked non-boundary positions carry no target.
                assert_eq!(tgt, lrd_nn::act::IGNORE_INDEX);
            }
        }
        assert!(
            masked >= 6,
            "each sequence masks at least one slot, got {masked}"
        );
    }

    #[test]
    fn contested_facts_lean_toward_misconception() {
        // Count stated values over many samples for contested pairs.
        let world = World::new(5);
        let mut c = CorpusBuilder::new(world, 6, 32);
        let (e, r) = {
            let mut found = (0, N_ENTITY_RELATIONS);
            'outer: for e in 0..N_ENTITIES {
                for r in N_ENTITY_RELATIONS..N_RELATIONS {
                    if world.is_contested(e, r) {
                        found = (e, r);
                        break 'outer;
                    }
                }
            }
            found
        };
        let mut lies = 0;
        let mut truths = 0;
        for _ in 0..400 {
            let v = c.stated_value(e, r);
            if v == world.misconception(e, r) {
                lies += 1;
            } else if v == world.value_fact(e, r) {
                truths += 1;
            }
        }
        assert!(lies > truths, "lies {lies} vs truths {truths}");
    }

    #[test]
    fn held_out_arithmetic_never_trained() {
        let world = World::new(6);
        let mut c = CorpusBuilder::new(world, 8, 64);
        for _ in 0..300 {
            let s = c.statement();
            // Arithmetic statements have the form [a, +, b, =, s, SEP].
            if s.len() == 6 && s[1] == vocab::PLUS {
                let a = s[0] - vocab::DIGIT_BASE;
                let b = s[2] - vocab::DIGIT_BASE;
                assert!(!world.arithmetic_holdout(a, b));
            }
        }
    }
}
