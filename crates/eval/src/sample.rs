//! Benchmark sample types and the `Benchmark` trait.

use crate::world::World;
use lrd_tensor::rng::Rng64;

/// How a benchmark is scored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScoringMode {
    /// Length-normalized log-likelihood over answer choices (ARC,
    /// HellaSwag, MMLU, TruthfulQA, WinoGrande).
    MultipleChoice,
    /// Greedy generation compared by exact match (GSM8K).
    ExactMatch,
    /// Encoder cloze scoring: the prompt contains one
    /// [`crate::vocab::MASK`] token; single-token choices are compared by
    /// their logit at the masked position (the BERT/SQuAD-style probe).
    Cloze,
}

/// One evaluation sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Prompt token ids (includes any few-shot examples).
    pub prompt: Vec<usize>,
    /// Candidate continuations (multiple-choice mode).
    pub choices: Vec<Vec<usize>>,
    /// Index of the correct choice (multiple-choice mode).
    pub answer: usize,
    /// Reference continuation for exact-match mode.
    pub reference: Vec<usize>,
}

impl Sample {
    /// Builds a multiple-choice sample.
    ///
    /// # Panics
    ///
    /// Panics if `answer` is out of range or any choice is empty.
    pub fn multiple_choice(prompt: Vec<usize>, choices: Vec<Vec<usize>>, answer: usize) -> Self {
        assert!(answer < choices.len(), "answer index out of range");
        assert!(choices.iter().all(|c| !c.is_empty()), "empty choice");
        Sample {
            prompt,
            choices,
            answer,
            reference: Vec::new(),
        }
    }

    /// Builds an exact-match generation sample.
    ///
    /// # Panics
    ///
    /// Panics if the reference is empty.
    pub fn exact_match(prompt: Vec<usize>, reference: Vec<usize>) -> Self {
        assert!(!reference.is_empty(), "empty reference");
        Sample {
            prompt,
            choices: Vec::new(),
            answer: 0,
            reference,
        }
    }
}

/// A benchmark: a named, seeded generator of evaluation samples.
///
/// Implementations live in [`crate::tasks`]; the trait is object-safe so
/// the harness can iterate a heterogeneous registry (Table 3).
pub trait Benchmark {
    /// Benchmark name as used in the paper's tables/figures.
    fn name(&self) -> &'static str;

    /// How this benchmark is scored.
    fn scoring(&self) -> ScoringMode {
        ScoringMode::MultipleChoice
    }

    /// Generates the next evaluation sample.
    fn sample(&self, world: &World, rng: &mut Rng64) -> Sample;

    /// Generates a deterministic evaluation set of `n` samples.
    fn samples(&self, world: &World, n: usize, seed: u64) -> Vec<Sample> {
        let mut rng = Rng64::new(seed ^ 0xBE9C_41AF);
        (0..n).map(|_| self.sample(world, &mut rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy;
    impl Benchmark for Dummy {
        fn name(&self) -> &'static str {
            "dummy"
        }
        fn sample(&self, _world: &World, rng: &mut Rng64) -> Sample {
            Sample::multiple_choice(vec![1, 2], vec![vec![3], vec![4]], rng.below(2))
        }
    }

    #[test]
    fn samples_are_deterministic_per_seed() {
        let w = World::new(1);
        let a = Dummy.samples(&w, 10, 7);
        let b = Dummy.samples(&w, 10, 7);
        assert_eq!(a, b);
        let c = Dummy.samples(&w, 10, 8);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "answer index")]
    fn invalid_answer_rejected() {
        let _ = Sample::multiple_choice(vec![1], vec![vec![2]], 3);
    }

    #[test]
    #[should_panic(expected = "empty reference")]
    fn empty_reference_rejected() {
        let _ = Sample::exact_match(vec![1], vec![]);
    }
}
