//! The seven benchmark generators (Table 3 of the paper).
//!
//! Each generator mirrors the *format and difficulty mechanism* of its
//! namesake benchmark; see the crate docs for the mapping rationale.

use crate::sample::{Benchmark, Sample, ScoringMode};
use crate::vocab::{self, N_DOMAINS, N_ENTITIES, N_ENTITY_RELATIONS, N_RELATIONS, N_VALUES};
use crate::world::World;
use lrd_tensor::rng::Rng64;

/// Draws a value relation belonging to `domain`.
fn relation_in_domain(domain: usize, rng: &mut Rng64) -> usize {
    loop {
        let r = N_ENTITY_RELATIONS + rng.below(N_RELATIONS - N_ENTITY_RELATIONS);
        if vocab::domain_of_relation(r) == domain {
            return r;
        }
    }
}

/// Picks `n` distinct distractor value indices, none equal to `truth`.
fn value_distractors(truth: usize, n: usize, rng: &mut Rng64) -> Vec<usize> {
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let v = rng.below(N_VALUES);
        if v != truth && !out.contains(&v) {
            out.push(v);
        }
    }
    out
}

/// Assembles a 4-way multiple-choice sample from a truth value and
/// distractor values, shuffling the answer position.
fn four_way(prompt: Vec<usize>, truth: usize, distractors: Vec<usize>, rng: &mut Rng64) -> Sample {
    let mut values = vec![truth];
    values.extend(distractors);
    let mut order: Vec<usize> = (0..values.len()).collect();
    rng.shuffle(&mut order);
    // lrd-lint: allow(no-panic, "`order` is a shuffled permutation of 0..n, so index 0 is always present")
    let answer = order.iter().position(|&i| i == 0).expect("truth present");
    let choices = order
        .iter()
        .map(|&i| vec![vocab::value(values[i])])
        .collect();
    Sample::multiple_choice(prompt, choices, answer)
}

/// ARC-Easy analog: single-hop fact queries over the most-trained domain.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArcEasy;

impl Benchmark for ArcEasy {
    fn name(&self) -> &'static str {
        "ARC Easy"
    }

    fn sample(&self, world: &World, rng: &mut Rng64) -> Sample {
        // Contested pairs belong to TruthfulQA; ARC-Easy probes facts the
        // corpus states truthfully.
        let (e, r) = loop {
            let e = rng.below(N_ENTITIES);
            let r = relation_in_domain(0, rng);
            if !world.is_contested(e, r) {
                break (e, r);
            }
        };
        let truth = world.value_fact(e, r);
        let prompt = vec![
            vocab::BOS,
            vocab::QUERY,
            vocab::entity(e),
            vocab::relation(r),
            vocab::SEP,
        ];
        four_way(prompt, truth, value_distractors(truth, 3, rng), rng)
    }
}

/// ARC-Challenge analog: 2-hop compositional queries; one distractor is the
/// tempting 1-hop answer.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArcChallenge;

impl Benchmark for ArcChallenge {
    fn name(&self) -> &'static str {
        "ARC Challenge"
    }

    fn sample(&self, world: &World, rng: &mut Rng64) -> Sample {
        let e = rng.below(N_ENTITIES);
        let r1 = rng.below(N_ENTITY_RELATIONS);
        let r2 = N_ENTITY_RELATIONS + rng.below(N_RELATIONS - N_ENTITY_RELATIONS);
        let truth = world.two_hop_fact(e, r1, r2);
        // The 1-hop "trap": applying r2 directly to e.
        let trap = world.value_fact(e, r2);
        let mut distractors = vec![];
        if trap != truth {
            distractors.push(trap);
        }
        let need = 3 - distractors.len();
        for v in value_distractors(truth, need + 1, rng) {
            if distractors.len() < 3 && !distractors.contains(&v) {
                distractors.push(v);
            }
        }
        let prompt = vec![
            vocab::BOS,
            vocab::QUERY,
            vocab::entity(e),
            vocab::relation(r1),
            vocab::relation(r2),
            vocab::SEP,
        ];
        four_way(prompt, truth, distractors, rng)
    }
}

/// HellaSwag analog: multi-token continuation of a two-fact "story".
#[derive(Debug, Clone, Copy, Default)]
pub struct HellaSwag;

impl HellaSwag {
    /// The canonical story continuation `[v_a, v_b, EOS]` for prompt
    /// `[BOS, e, r_a, r_b, SEP]`.
    pub fn continuation(world: &World, e: usize, ra: usize, rb: usize) -> Vec<usize> {
        vec![
            vocab::value(world.value_fact(e, ra)),
            vocab::value(world.value_fact(e, rb)),
            vocab::EOS,
        ]
    }
}

impl Benchmark for HellaSwag {
    fn name(&self) -> &'static str {
        "HellaSwag"
    }

    fn sample(&self, world: &World, rng: &mut Rng64) -> Sample {
        let (e, ra, rb) = loop {
            let e = rng.below(N_ENTITIES);
            let ra = relation_in_domain(1, rng);
            let rb = relation_in_domain(2, rng);
            if !world.is_contested(e, ra) && !world.is_contested(e, rb) {
                break (e, ra, rb);
            }
        };
        let truth = Self::continuation(world, e, ra, rb);
        let mut choices = vec![truth.clone()];
        // Distractors corrupt one or both continuation tokens.
        while choices.len() < 4 {
            let mut c = truth.clone();
            let which = rng.below(2);
            c[which] = vocab::value(rng.below(N_VALUES));
            if !choices.contains(&c) {
                choices.push(c);
            }
        }
        let mut order: Vec<usize> = (0..4).collect();
        rng.shuffle(&mut order);
        // lrd-lint: allow(no-panic, "`order` is a shuffled permutation of 0..4, so index 0 is always present")
        let answer = order.iter().position(|&i| i == 0).expect("truth present");
        let choices = order.iter().map(|&i| choices[i].clone()).collect();
        let prompt = vec![
            vocab::BOS,
            vocab::entity(e),
            vocab::relation(ra),
            vocab::relation(rb),
            vocab::SEP,
        ];
        Sample::multiple_choice(prompt, choices, answer)
    }
}

/// MMLU analog: single-hop queries spread uniformly over all domains, whose
/// training exposure is heavily skewed.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mmlu;

impl Benchmark for Mmlu {
    fn name(&self) -> &'static str {
        "MMLU"
    }

    fn sample(&self, world: &World, rng: &mut Rng64) -> Sample {
        let (e, r) = loop {
            let e = rng.below(N_ENTITIES);
            let domain = rng.below(N_DOMAINS);
            let r = relation_in_domain(domain, rng);
            if !world.is_contested(e, r) {
                break (e, r);
            }
        };
        let truth = world.value_fact(e, r);
        let prompt = vec![
            vocab::BOS,
            vocab::QUERY,
            vocab::entity(e),
            vocab::relation(r),
            vocab::SEP,
        ];
        four_way(prompt, truth, value_distractors(truth, 3, rng), rng)
    }
}

/// A single MMLU domain (for the per-domain breakdown the real benchmark
/// reports per subject).
#[derive(Debug, Clone, Copy)]
pub struct MmluDomain(pub usize);

impl Benchmark for MmluDomain {
    fn name(&self) -> &'static str {
        // Static names so the `Benchmark` trait's `&'static str` contract
        // holds; indices map onto the round-robin domain partition.
        const NAMES: [&str; N_DOMAINS] = [
            "MMLU/d0", "MMLU/d1", "MMLU/d2", "MMLU/d3", "MMLU/d4", "MMLU/d5",
        ];
        NAMES[self.0]
    }

    fn sample(&self, world: &World, rng: &mut Rng64) -> Sample {
        let (e, r) = loop {
            let e = rng.below(N_ENTITIES);
            let r = relation_in_domain(self.0, rng);
            if !world.is_contested(e, r) {
                break (e, r);
            }
        };
        let truth = world.value_fact(e, r);
        let prompt = vec![
            vocab::BOS,
            vocab::QUERY,
            vocab::entity(e),
            vocab::relation(r),
            vocab::SEP,
        ];
        four_way(prompt, truth, value_distractors(truth, 3, rng), rng)
    }
}

/// TruthfulQA analog: contested facts where training repeats a popular
/// misconception more often than the truth.
#[derive(Debug, Clone, Copy, Default)]
pub struct TruthfulQa;

impl Benchmark for TruthfulQa {
    fn name(&self) -> &'static str {
        "TruthfulQA"
    }

    fn sample(&self, world: &World, rng: &mut Rng64) -> Sample {
        // Find a contested (e, r) pair.
        let (e, r) = loop {
            let e = rng.below(N_ENTITIES);
            let r = N_ENTITY_RELATIONS + rng.below(N_RELATIONS - N_ENTITY_RELATIONS);
            if world.is_contested(e, r) {
                break (e, r);
            }
        };
        let truth = world.value_fact(e, r);
        let lie = world.misconception(e, r);
        let mut distractors = vec![lie];
        for v in value_distractors(truth, 3, rng) {
            if distractors.len() < 3 && v != lie {
                distractors.push(v);
            }
        }
        let prompt = vec![
            vocab::BOS,
            vocab::QUERY,
            vocab::entity(e),
            vocab::relation(r),
            vocab::SEP,
        ];
        four_way(prompt, truth, distractors, rng)
    }
}

/// WinoGrande analog: two entities, a property relation; the model must
/// select the entity that has the property (context-dependent copying).
#[derive(Debug, Clone, Copy, Default)]
pub struct WinoGrande;

impl Benchmark for WinoGrande {
    fn name(&self) -> &'static str {
        "WinoGrande"
    }

    fn sample(&self, world: &World, rng: &mut Rng64) -> Sample {
        // Properties live on the entity relations only, keeping the
        // property table small enough to be learned during CPU training.
        let r = rng.below(N_ENTITY_RELATIONS);
        // Draw e_yes with the property and e_no without it.
        let e_yes = loop {
            let e = rng.below(N_ENTITIES);
            if world.has_property(e, r) {
                break e;
            }
        };
        let e_no = loop {
            let e = rng.below(N_ENTITIES);
            if e != e_yes && !world.has_property(e, r) {
                break e;
            }
        };
        let yes_first = rng.below(2) == 0;
        let (e1, e2) = if yes_first {
            (e_yes, e_no)
        } else {
            (e_no, e_yes)
        };
        let prompt = vec![
            vocab::BOS,
            vocab::entity(e1),
            vocab::entity(e2),
            vocab::relation(r),
            vocab::SEP,
        ];
        let choices = vec![vec![vocab::entity(e1)], vec![vocab::entity(e2)]];
        Sample::multiple_choice(prompt, choices, if yes_first { 0 } else { 1 })
    }
}

/// GSM8K analog: 8-shot modular-addition word problems scored by exact
/// match, evaluated on arithmetic pairs held out of the training corpus.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gsm8k;

impl Gsm8k {
    /// Renders one worked example `[d1, +, d2, =, s, SEP]`.
    pub fn shot(a: usize, b: usize) -> Vec<usize> {
        vec![
            vocab::digit(a),
            vocab::PLUS,
            vocab::digit(b),
            vocab::EQUALS,
            vocab::digit(World::sum_mod10(&[a, b])),
            vocab::SEP,
        ]
    }
}

impl Benchmark for Gsm8k {
    fn name(&self) -> &'static str {
        "GSM8K"
    }

    fn scoring(&self) -> ScoringMode {
        ScoringMode::ExactMatch
    }

    fn sample(&self, world: &World, rng: &mut Rng64) -> Sample {
        let mut prompt = vec![vocab::BOS];
        // Eight in-distribution shots.
        let mut shots = 0;
        while shots < 8 {
            let (a, b) = (rng.below(10), rng.below(10));
            if !world.arithmetic_holdout(a, b) {
                prompt.extend(Gsm8k::shot(a, b));
                shots += 1;
            }
        }
        // The query pair is drawn from the full operand space: ~75% were
        // trained (multi-step recall under few-shot format) and ~25% are
        // held out (true generalization), mirroring GSM8K's blend of
        // template familiarity and novel instances.
        let (a, b) = (rng.below(10), rng.below(10));
        prompt.extend([vocab::digit(a), vocab::PLUS, vocab::digit(b), vocab::EQUALS]);
        Sample::exact_match(prompt, vec![vocab::digit(World::sum_mod10(&[a, b]))])
    }
}

/// BERT-side cloze probe (the SQuAD-analog accuracy instrument for the
/// encoder model): a fact statement with its value masked; the model picks
/// the value whose logit at the masked position is highest.
#[derive(Debug, Clone, Copy, Default)]
pub struct BertCloze;

impl Benchmark for BertCloze {
    fn name(&self) -> &'static str {
        "Cloze (BERT)"
    }

    fn scoring(&self) -> ScoringMode {
        ScoringMode::Cloze
    }

    fn sample(&self, world: &World, rng: &mut Rng64) -> Sample {
        let (e, r) = loop {
            let e = rng.below(N_ENTITIES);
            let r = N_ENTITY_RELATIONS + rng.below(N_RELATIONS - N_ENTITY_RELATIONS);
            if !world.is_contested(e, r) {
                break (e, r);
            }
        };
        let truth = world.value_fact(e, r);
        let prompt = vec![
            vocab::BOS,
            vocab::entity(e),
            vocab::relation(r),
            vocab::SEP,
            vocab::MASK,
            vocab::EOS,
        ];
        four_way(prompt, truth, value_distractors(truth, 3, rng), rng)
    }
}

/// The full benchmark registry in Table 3 order.
pub fn registry() -> Vec<Box<dyn Benchmark + Send + Sync>> {
    vec![
        Box::new(ArcEasy),
        Box::new(ArcChallenge),
        Box::new(HellaSwag),
        Box::new(Mmlu),
        Box::new(TruthfulQa),
        Box::new(WinoGrande),
        Box::new(Gsm8k),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        World::new(11)
    }

    #[test]
    fn registry_matches_table3() {
        let names: Vec<_> = registry().iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            vec![
                "ARC Easy",
                "ARC Challenge",
                "HellaSwag",
                "MMLU",
                "TruthfulQA",
                "WinoGrande",
                "GSM8K"
            ]
        );
    }

    #[test]
    fn arc_easy_answer_is_correct_fact() {
        let w = world();
        let mut rng = Rng64::new(1);
        for _ in 0..50 {
            let s = ArcEasy.sample(&w, &mut rng);
            assert_eq!(s.choices.len(), 4);
            let e = s.prompt[2] - vocab::ENTITY_BASE;
            let r = s.prompt[3] - vocab::RELATION_BASE;
            assert_eq!(s.choices[s.answer][0], vocab::value(w.value_fact(e, r)));
        }
    }

    #[test]
    fn arc_easy_choices_are_distinct() {
        let w = world();
        let mut rng = Rng64::new(2);
        for _ in 0..50 {
            let s = ArcEasy.sample(&w, &mut rng);
            for i in 0..4 {
                for j in (i + 1)..4 {
                    assert_ne!(s.choices[i], s.choices[j]);
                }
            }
        }
    }

    #[test]
    fn arc_challenge_contains_two_hop_truth() {
        let w = world();
        let mut rng = Rng64::new(3);
        for _ in 0..50 {
            let s = ArcChallenge.sample(&w, &mut rng);
            let e = s.prompt[2] - vocab::ENTITY_BASE;
            let r1 = s.prompt[3] - vocab::RELATION_BASE;
            let r2 = s.prompt[4] - vocab::RELATION_BASE;
            assert_eq!(
                s.choices[s.answer][0],
                vocab::value(w.two_hop_fact(e, r1, r2))
            );
        }
    }

    #[test]
    fn hellaswag_truth_is_canonical_continuation() {
        let w = world();
        let mut rng = Rng64::new(4);
        for _ in 0..30 {
            let s = HellaSwag.sample(&w, &mut rng);
            let e = s.prompt[1] - vocab::ENTITY_BASE;
            let ra = s.prompt[2] - vocab::RELATION_BASE;
            let rb = s.prompt[3] - vocab::RELATION_BASE;
            assert_eq!(s.choices[s.answer], HellaSwag::continuation(&w, e, ra, rb));
        }
    }

    #[test]
    fn truthfulqa_includes_misconception_choice() {
        let w = world();
        let mut rng = Rng64::new(5);
        for _ in 0..30 {
            let s = TruthfulQa.sample(&w, &mut rng);
            let e = s.prompt[2] - vocab::ENTITY_BASE;
            let r = s.prompt[3] - vocab::RELATION_BASE;
            let lie = vocab::value(w.misconception(e, r));
            assert!(
                s.choices.iter().any(|c| c[0] == lie),
                "misconception not offered"
            );
            assert!(w.is_contested(e, r));
        }
    }

    #[test]
    fn winogrande_answer_has_property() {
        let w = world();
        let mut rng = Rng64::new(6);
        for _ in 0..50 {
            let s = WinoGrande.sample(&w, &mut rng);
            assert_eq!(s.choices.len(), 2);
            let r = s.prompt[3] - vocab::RELATION_BASE;
            let chosen = s.choices[s.answer][0] - vocab::ENTITY_BASE;
            let other = s.choices[1 - s.answer][0] - vocab::ENTITY_BASE;
            assert!(w.has_property(chosen, r));
            assert!(!w.has_property(other, r));
        }
    }

    #[test]
    fn gsm8k_prompt_fits_max_seq_with_correct_reference() {
        let w = world();
        let mut rng = Rng64::new(7);
        let mut held_out = 0;
        for _ in 0..60 {
            let s = Gsm8k.sample(&w, &mut rng);
            assert!(s.prompt.len() + s.reference.len() <= 64, "prompt too long");
            let n = s.prompt.len();
            let a = s.prompt[n - 4] - vocab::DIGIT_BASE;
            let b = s.prompt[n - 2] - vocab::DIGIT_BASE;
            if w.arithmetic_holdout(a, b) {
                held_out += 1;
            }
            assert_eq!(s.reference, vec![vocab::digit((a + b) % 10)]);
            // The 8 shots are always drawn from the trained pairs.
            for shot in 0..8 {
                let base = 1 + shot * 6;
                let sa = s.prompt[base] - vocab::DIGIT_BASE;
                let sb = s.prompt[base + 2] - vocab::DIGIT_BASE;
                assert!(!w.arithmetic_holdout(sa, sb));
            }
        }
        assert!(held_out > 5, "query mix should include held-out pairs");
    }

    #[test]
    fn bert_cloze_sample_shape() {
        let w = world();
        let mut rng = Rng64::new(9);
        for _ in 0..30 {
            let s = BertCloze.sample(&w, &mut rng);
            assert_eq!(s.prompt.len(), 6);
            assert_eq!(s.prompt[4], vocab::MASK);
            assert!(s.choices.iter().all(|c| c.len() == 1));
            let e = s.prompt[1] - vocab::ENTITY_BASE;
            let r = s.prompt[2] - vocab::RELATION_BASE;
            assert_eq!(s.choices[s.answer][0], vocab::value(w.value_fact(e, r)));
        }
    }

    #[test]
    fn answer_positions_are_shuffled() {
        let w = world();
        let mut rng = Rng64::new(8);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[ArcEasy.sample(&w, &mut rng).answer] = true;
        }
        assert!(seen.iter().all(|&s| s), "answer position never varies");
    }
}
