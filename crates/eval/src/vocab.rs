//! Token-id layout of the synthetic language.
//!
//! The 256-token vocabulary is partitioned into control tokens, digits,
//! entities, relations and values. All benchmark prompts and the training
//! corpus are composed from these ranges.

/// Padding (ignored by causal models when placed after the sequence end).
pub const PAD: usize = 0;
/// Beginning-of-sequence marker.
pub const BOS: usize = 1;
/// End-of-sequence marker.
pub const EOS: usize = 2;
/// Separator between a query and its answer.
pub const SEP: usize = 3;
/// Question marker.
pub const QUERY: usize = 4;
/// Answer marker.
pub const ANS: usize = 5;
/// Addition operator (arithmetic tasks).
pub const PLUS: usize = 6;
/// Equality marker (arithmetic tasks).
pub const EQUALS: usize = 7;
/// Mask token for BERT-style masked-language-model training and cloze
/// evaluation.
pub const MASK: usize = 8;

/// First digit token; digit `d` is `DIGIT_BASE + d`.
pub const DIGIT_BASE: usize = 10;
/// Number of digit tokens (0–9).
pub const N_DIGITS: usize = 10;

/// First entity token.
pub const ENTITY_BASE: usize = 32;
/// Number of entity tokens (sized so each fact is revisited often enough
/// during the tiny models' CPU training budget).
pub const N_ENTITIES: usize = 48;

/// First relation token.
pub const RELATION_BASE: usize = 112;
/// Number of relation tokens.
pub const N_RELATIONS: usize = 24;
/// Relations with indices below this map entities to entities (usable as
/// the first hop of a 2-hop query); the rest map entities to values.
pub const N_ENTITY_RELATIONS: usize = 6;
/// Number of MMLU-style domains the value relations are partitioned into.
pub const N_DOMAINS: usize = 6;

/// First value token.
pub const VALUE_BASE: usize = 136;
/// Number of value tokens.
pub const N_VALUES: usize = 80;

/// Total vocabulary size expected by the tiny models.
pub const VOCAB_SIZE: usize = 256;

/// Token id of digit `d`.
///
/// # Panics
///
/// Panics if `d ≥ 10`.
pub fn digit(d: usize) -> usize {
    assert!(d < N_DIGITS, "digit {d} out of range");
    DIGIT_BASE + d
}

/// Token id of entity `i`.
///
/// # Panics
///
/// Panics if `i` is out of range.
pub fn entity(i: usize) -> usize {
    assert!(i < N_ENTITIES, "entity {i} out of range");
    ENTITY_BASE + i
}

/// Token id of relation `i`.
///
/// # Panics
///
/// Panics if `i` is out of range.
pub fn relation(i: usize) -> usize {
    assert!(i < N_RELATIONS, "relation {i} out of range");
    RELATION_BASE + i
}

/// Token id of value `i`.
///
/// # Panics
///
/// Panics if `i` is out of range.
pub fn value(i: usize) -> usize {
    assert!(i < N_VALUES, "value {i} out of range");
    VALUE_BASE + i
}

/// Whether a token id denotes an entity.
pub fn is_entity(tok: usize) -> bool {
    (ENTITY_BASE..ENTITY_BASE + N_ENTITIES).contains(&tok)
}

/// Whether a token id denotes a value.
pub fn is_value(tok: usize) -> bool {
    (VALUE_BASE..VALUE_BASE + N_VALUES).contains(&tok)
}

/// Whether a token id denotes a digit; returns the digit if so.
pub fn as_digit(tok: usize) -> Option<usize> {
    (DIGIT_BASE..DIGIT_BASE + N_DIGITS)
        .contains(&tok)
        .then(|| tok - DIGIT_BASE)
}

/// The MMLU domain of a value relation (relation indices
/// `N_ENTITY_RELATIONS..N_RELATIONS` are split round-robin into
/// [`N_DOMAINS`] domains).
///
/// # Panics
///
/// Panics if `rel_index` is an entity relation.
pub fn domain_of_relation(rel_index: usize) -> usize {
    assert!(
        (N_ENTITY_RELATIONS..N_RELATIONS).contains(&rel_index),
        "relation {rel_index} is not a value relation"
    );
    (rel_index - N_ENTITY_RELATIONS) % N_DOMAINS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // documents the vocabulary layout
    fn ranges_do_not_overlap() {
        assert!(DIGIT_BASE + N_DIGITS <= ENTITY_BASE);
        assert!(ENTITY_BASE + N_ENTITIES <= RELATION_BASE);
        assert!(RELATION_BASE + N_RELATIONS <= VALUE_BASE);
        assert!(VALUE_BASE + N_VALUES <= VOCAB_SIZE);
    }

    #[test]
    fn token_constructors() {
        assert_eq!(digit(7), 17);
        assert_eq!(entity(0), ENTITY_BASE);
        assert_eq!(relation(23), RELATION_BASE + 23);
        assert_eq!(value(79), VALUE_BASE + 79);
    }

    #[test]
    fn classifiers() {
        assert!(is_entity(entity(5)));
        assert!(!is_entity(value(5)));
        assert!(is_value(value(0)));
        assert_eq!(as_digit(digit(3)), Some(3));
        assert_eq!(as_digit(BOS), None);
    }

    #[test]
    fn domains_cover_all_value_relations() {
        let mut seen = [false; N_DOMAINS];
        for r in N_ENTITY_RELATIONS..N_RELATIONS {
            seen[domain_of_relation(r)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn digit_bounds_checked() {
        let _ = digit(10);
    }
}
