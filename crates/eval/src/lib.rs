//! # lrd-eval
//!
//! A synthetic benchmark suite and evaluation harness standing in for
//! EleutherAI's lm-evaluation-harness and the HuggingFace Open LLM
//! Leaderboard benchmarks used by the paper (Table 3).
//!
//! The real benchmarks (ARC, HellaSwag, MMLU, TruthfulQA, WinoGrande,
//! GSM8K) are natural-language datasets we cannot ship or evaluate against
//! offline. What the paper *uses* them for, however, is a set of accuracy
//! probes of graded difficulty over a model whose weights are perturbed by
//! low-rank decomposition. This crate reproduces that instrument:
//!
//! * [`world`] — a seeded synthetic knowledge world (entities, relations,
//!   facts, 2-hop compositions, properties, popular misconceptions, modular
//!   arithmetic).
//! * [`tasks`] — seven generators that mirror each benchmark's *format and
//!   difficulty profile*: single-hop facts (ARC-Easy), 2-hop composition
//!   (ARC-Challenge), multi-token continuation (HellaSwag), many domains
//!   with skewed training exposure (MMLU), truth-vs-frequency conflict
//!   (TruthfulQA), context-dependent binary choice (WinoGrande), and
//!   8-shot exact-match arithmetic (GSM8K).
//! * [`harness`] — lm-eval-style evaluation: batched length-normalized
//!   log-likelihood scoring for multiple choice and greedy-decoding exact
//!   match for generation, parallelized across CPU threads.
//! * [`corpus`] — the training-corpus builder whose mixing weights give the
//!   trained model its benchmark-dependent accuracy margins.

pub mod corpus;
pub mod harness;
pub mod sample;
pub mod tasks;
pub mod vocab;
pub mod world;

pub use harness::{evaluate, Accuracy};
pub use sample::{Benchmark, Sample};
pub use world::World;
