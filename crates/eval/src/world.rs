//! The seeded synthetic knowledge world underlying all benchmarks.
//!
//! Every "fact" is a deterministic function of the world seed, so the
//! training corpus and every benchmark sample agree on ground truth without
//! storing anything.

use crate::vocab::{self, N_ENTITIES, N_ENTITY_RELATIONS, N_RELATIONS, N_VALUES};

/// A deterministic world of entities, relations and facts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct World {
    seed: u64,
}

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl World {
    /// Creates a world with the given seed.
    pub fn new(seed: u64) -> Self {
        World { seed }
    }

    /// The world seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn hash(&self, tag: u64, a: usize, b: usize) -> u64 {
        mix(self.seed
            ^ tag.wrapping_mul(0x517C_C1B7_2722_0A95)
            ^ (a as u64).wrapping_mul(0x2545_F491_4F6C_DD1D)
            ^ (b as u64) << 17)
    }

    /// Value-fact: the value index (`0..N_VALUES`) that entity `e` has for
    /// value relation `r`.
    ///
    /// # Panics
    ///
    /// Panics if `e` or `r` are out of range or `r` is an entity relation.
    pub fn value_fact(&self, e: usize, r: usize) -> usize {
        assert!(e < N_ENTITIES, "entity {e} out of range");
        assert!(
            (N_ENTITY_RELATIONS..N_RELATIONS).contains(&r),
            "not a value relation: {r}"
        );
        (self.hash(1, e, r) % N_VALUES as u64) as usize
    }

    /// Entity-fact: the entity index that entity `e` maps to under entity
    /// relation `r` (the first hop of a 2-hop query).
    ///
    /// # Panics
    ///
    /// Panics if `e` or `r` are out of range.
    pub fn entity_fact(&self, e: usize, r: usize) -> usize {
        assert!(e < N_ENTITIES, "entity {e} out of range");
        assert!(r < N_ENTITY_RELATIONS, "not an entity relation: {r}");
        (self.hash(2, e, r) % N_ENTITIES as u64) as usize
    }

    /// Two-hop fact: `value_fact(entity_fact(e, r1), r2)`.
    pub fn two_hop_fact(&self, e: usize, r1: usize, r2: usize) -> usize {
        self.value_fact(self.entity_fact(e, r1), r2)
    }

    /// WinoGrande-style property: whether entity `e` "has" property
    /// relation `r` (a balanced predicate).
    pub fn has_property(&self, e: usize, r: usize) -> bool {
        self.hash(3, e, r) & 1 == 1
    }

    /// TruthfulQA-style popular misconception: a *wrong* value index for
    /// `(e, r)` that the training corpus repeats more often than the truth.
    /// Guaranteed to differ from [`World::value_fact`].
    pub fn misconception(&self, e: usize, r: usize) -> usize {
        let truth = self.value_fact(e, r);
        let m = (self.hash(4, e, r) % (N_VALUES as u64 - 1)) as usize;
        if m >= truth {
            m + 1
        } else {
            m
        }
    }

    /// Whether `(e, r)` is a "contested" pair carrying a popular
    /// misconception (about 1 in 4 value pairs).
    pub fn is_contested(&self, e: usize, r: usize) -> bool {
        self.hash(5, e, r).is_multiple_of(4)
    }

    /// Modular-arithmetic ground truth for GSM8K-style chains:
    /// `(Σ operands) mod 10`.
    pub fn sum_mod10(operands: &[usize]) -> usize {
        operands.iter().sum::<usize>() % 10
    }

    /// Whether an arithmetic triple is held out of the training corpus
    /// (about 25%) so few-shot evaluation measures generalization.
    pub fn arithmetic_holdout(&self, a: usize, b: usize) -> bool {
        self.hash(6, a, b).is_multiple_of(4)
    }

    /// Renders the canonical single-hop fact statement
    /// `[BOS, e, r, SEP, v, EOS]`.
    pub fn fact_statement(&self, e: usize, r: usize) -> Vec<usize> {
        vec![
            vocab::BOS,
            vocab::entity(e),
            vocab::relation(r),
            vocab::SEP,
            vocab::value(self.value_fact(e, r)),
            vocab::EOS,
        ]
    }

    /// Renders the canonical entity-hop statement `[BOS, e, r, SEP, e', EOS]`.
    pub fn entity_statement(&self, e: usize, r: usize) -> Vec<usize> {
        vec![
            vocab::BOS,
            vocab::entity(e),
            vocab::relation(r),
            vocab::SEP,
            vocab::entity(self.entity_fact(e, r)),
            vocab::EOS,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facts_are_deterministic() {
        let w1 = World::new(9);
        let w2 = World::new(9);
        for e in 0..10 {
            for r in N_ENTITY_RELATIONS..N_RELATIONS {
                assert_eq!(w1.value_fact(e, r), w2.value_fact(e, r));
            }
        }
    }

    #[test]
    fn different_seeds_give_different_worlds() {
        let w1 = World::new(1);
        let w2 = World::new(2);
        let same = (0..N_ENTITIES)
            .filter(|&e| w1.value_fact(e, 10) == w2.value_fact(e, 10))
            .count();
        assert!(same < N_ENTITIES / 2);
    }

    #[test]
    fn misconception_differs_from_truth() {
        let w = World::new(3);
        for e in 0..N_ENTITIES {
            for r in N_ENTITY_RELATIONS..N_RELATIONS {
                assert_ne!(w.misconception(e, r), w.value_fact(e, r));
            }
        }
    }

    #[test]
    fn properties_are_roughly_balanced() {
        let w = World::new(4);
        let trues = (0..N_ENTITIES)
            .flat_map(|e| (0..N_RELATIONS).map(move |r| (e, r)))
            .filter(|&(e, r)| w.has_property(e, r))
            .count();
        let total = N_ENTITIES * N_RELATIONS;
        let frac = trues as f64 / total as f64;
        assert!((frac - 0.5).abs() < 0.05, "property fraction {frac}");
    }

    #[test]
    fn two_hop_consistency() {
        let w = World::new(5);
        let mid = w.entity_fact(7, 2);
        assert_eq!(w.two_hop_fact(7, 2, 10), w.value_fact(mid, 10));
    }

    #[test]
    fn sum_mod10() {
        assert_eq!(World::sum_mod10(&[3, 4]), 7);
        assert_eq!(World::sum_mod10(&[7, 8]), 5);
        assert_eq!(World::sum_mod10(&[9, 9, 9]), 7);
    }

    #[test]
    fn fact_statement_layout() {
        let w = World::new(6);
        let s = w.fact_statement(0, 10);
        assert_eq!(s.len(), 6);
        assert_eq!(s[0], vocab::BOS);
        assert_eq!(s[3], vocab::SEP);
        assert_eq!(s[5], vocab::EOS);
        assert!(vocab::is_value(s[4]));
    }

    #[test]
    fn contested_fraction_about_quarter() {
        let w = World::new(7);
        let n = (0..N_ENTITIES)
            .flat_map(|e| (N_ENTITY_RELATIONS..N_RELATIONS).map(move |r| (e, r)))
            .filter(|&(e, r)| w.is_contested(e, r))
            .count();
        let total = N_ENTITIES * (N_RELATIONS - N_ENTITY_RELATIONS);
        let frac = n as f64 / total as f64;
        assert!((frac - 0.25).abs() < 0.05, "contested fraction {frac}");
    }
}
