//! lm-eval-style evaluation harness.
//!
//! Multiple-choice benchmarks are scored by length-normalized
//! log-likelihood (the lm-evaluation-harness `acc_norm` convention);
//! generation benchmarks by greedy decoding and exact match. Scoring is
//! batched (right-padded within each batch) and parallelized across CPU
//! threads, the stand-in for the paper's throughput-oriented max-batch GPU
//! evaluation.

use crate::sample::{Benchmark, Sample, ScoringMode};
use crate::vocab;
use crate::world::World;
use lrd_nn::act::log_softmax_rows;
use lrd_nn::TransformerLm;

/// An accuracy measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Accuracy {
    /// Correctly answered samples.
    pub correct: usize,
    /// Total samples evaluated.
    pub total: usize,
}

impl Accuracy {
    /// Accuracy in percent (0 for an empty evaluation).
    pub fn percent(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * self.correct as f64 / self.total as f64
        }
    }

    /// Binomial standard error of the accuracy estimate, in percentage
    /// points (the lm-eval-harness `acc_stderr` convention).
    pub fn stderr(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let p = self.correct as f64 / self.total as f64;
        100.0 * (p * (1.0 - p) / self.total as f64).sqrt()
    }
}

impl std::fmt::Display for Accuracy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.1}% ({}/{})",
            self.percent(),
            self.correct,
            self.total
        )
    }
}

/// Evaluation options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalOptions {
    /// Number of samples to draw.
    pub n_samples: usize,
    /// Sampling seed (evaluation sets are deterministic per seed).
    pub seed: u64,
    /// Rows per scoring batch.
    pub batch_size: usize,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            n_samples: 200,
            seed: 17,
            batch_size: 64,
            threads: 0,
        }
    }
}

impl EvalOptions {
    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            // lrd-lint: allow(determinism, "thread count only partitions independent per-sample scoring; results are order-invariant and pinned by determinism tests")
            std::thread::available_parallelism()
                .map(std::num::NonZero::get)
                .unwrap_or(1)
                .min(16)
        }
    }
}

/// One scoring row: a full (prompt ++ choice) sequence.
struct Row {
    sample: usize,
    choice: usize,
    tokens: Vec<usize>,
    prefix_len: usize,
}

/// Evaluates `bench` on `model` and returns the accuracy.
///
/// # Panics
///
/// Panics if a sample exceeds the model's maximum sequence length.
pub fn evaluate(
    model: &TransformerLm,
    bench: &dyn Benchmark,
    world: &World,
    opts: &EvalOptions,
) -> Accuracy {
    let _score = lrd_trace::span("score", bench.name());
    let samples = bench.samples(world, opts.n_samples, opts.seed);
    let acc = match bench.scoring() {
        ScoringMode::MultipleChoice => evaluate_multiple_choice(model, &samples, opts),
        ScoringMode::ExactMatch => evaluate_exact_match(model, &samples, opts),
        ScoringMode::Cloze => evaluate_cloze(model, bench.name(), &samples, opts),
    };
    lrd_trace::counters::add(lrd_trace::Counter::EvalSamplesScored, acc.total as u64);
    acc
}

/// Cloze scoring for encoder models: one forward pass per batch of
/// equal-length prompts; each sample is answered by the choice token with
/// the highest logit at its masked position.
///
/// A prompt without a [`vocab::MASK`] token cannot be scored; such samples
/// are skipped (with a warning naming the task and the first offending
/// sample index, counted in telemetry) instead of panicking the scoring
/// worker and killing the whole harness.
///
/// # Panics
///
/// Panics if prompts have differing lengths (bidirectional attention would
/// see padding) or a choice is not a single token.
fn evaluate_cloze(
    model: &TransformerLm,
    task: &'static str,
    samples: &[Sample],
    opts: &EvalOptions,
) -> Accuracy {
    if samples.is_empty() {
        return Accuracy::default();
    }
    let seq = samples[0].prompt.len();
    for s in samples {
        assert_eq!(s.prompt.len(), seq, "cloze prompts must share one length");
        assert!(
            s.choices.iter().all(|c| c.len() == 1),
            "cloze choices must be single tokens"
        );
    }
    let per_batch = opts.batch_size.max(1);
    let chunks: Vec<&[Sample]> = samples.chunks(per_batch).collect();
    let correct = std::sync::atomic::AtomicUsize::new(0);
    let skipped = std::sync::atomic::AtomicUsize::new(0);
    let first_skipped = std::sync::atomic::AtomicUsize::new(usize::MAX);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let threads = opts.effective_threads().min(chunks.len());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let ci = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if ci >= chunks.len() {
                    break;
                }
                let chunk = chunks[ci];
                let flat: Vec<usize> = chunk
                    .iter()
                    .flat_map(|s| s.prompt.iter().copied())
                    .collect();
                let logits = model.logits(&flat, chunk.len());
                for (i, s) in chunk.iter().enumerate() {
                    let Some(mask_pos) = s.prompt.iter().position(|&t| t == vocab::MASK) else {
                        skipped.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        first_skipped
                            .fetch_min(ci * per_batch + i, std::sync::atomic::Ordering::Relaxed);
                        continue;
                    };
                    let row = logits.row(i * seq + mask_pos);
                    let best = s
                        .choices
                        .iter()
                        .enumerate()
                        .max_by(|a, b| {
                            row[a.1[0]]
                                .partial_cmp(&row[b.1[0]])
                                .unwrap_or(std::cmp::Ordering::Equal)
                        })
                        .map(|(j, _)| j)
                        .unwrap_or(0);
                    if best == s.answer {
                        correct.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let skipped = skipped.into_inner();
    if skipped > 0 {
        lrd_trace::counters::add(lrd_trace::Counter::EvalClozeMissingMask, skipped as u64);
        lrd_trace::warn(format!(
            "{task}: skipped {skipped} cloze prompt(s) without a MASK token \
             (first at sample index {})",
            first_skipped.into_inner()
        ));
    }
    Accuracy {
        correct: correct.into_inner(),
        total: samples.len() - skipped,
    }
}

fn evaluate_multiple_choice(
    model: &TransformerLm,
    samples: &[Sample],
    opts: &EvalOptions,
) -> Accuracy {
    // Flatten every (sample, choice) into a scoring row.
    let mut rows = Vec::new();
    for (si, s) in samples.iter().enumerate() {
        for (ci, c) in s.choices.iter().enumerate() {
            let mut tokens = s.prompt.clone();
            tokens.extend_from_slice(c);
            rows.push(Row {
                sample: si,
                choice: ci,
                tokens,
                prefix_len: s.prompt.len(),
            });
        }
    }
    let chunks: Vec<&[Row]> = rows.chunks(opts.batch_size.max(1)).collect();
    let mut scores: Vec<Vec<(usize, usize, f32)>> = vec![Vec::new(); chunks.len()];
    let threads = opts.effective_threads().min(chunks.len().max(1));

    let next = std::sync::atomic::AtomicUsize::new(0);
    type ChunkScores = Vec<(usize, Vec<(usize, usize, f32)>)>;
    let results: ChunkScores = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= chunks.len() {
                            break;
                        }
                        local.push((i, score_chunk(model, chunks[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            // lrd-lint: allow(no-panic, "join fails only when a scoring worker panicked; re-raising that panic is the correct propagation")
            .flat_map(|h| h.join().expect("scoring worker panicked"))
            .collect()
    });
    for (i, v) in results {
        scores[i] = v;
    }

    // Pick the best choice per sample.
    let mut best: Vec<(f32, usize)> = vec![(f32::NEG_INFINITY, usize::MAX); samples.len()];
    for (si, ci, score) in scores.into_iter().flatten() {
        if score > best[si].0 {
            best[si] = (score, ci);
        }
    }
    let correct = best
        .iter()
        .zip(samples)
        .filter(|((_, ci), s)| *ci == s.answer)
        .count();
    Accuracy {
        correct,
        total: samples.len(),
    }
}

/// Scores every row of a chunk in one padded batch forward pass; returns
/// `(sample, choice, mean continuation log-probability)` triples.
fn score_chunk(model: &TransformerLm, chunk: &[Row]) -> Vec<(usize, usize, f32)> {
    let max_len = chunk.iter().map(|r| r.tokens.len()).max().unwrap_or(0);
    let batch = chunk.len();
    let mut flat = vec![vocab::PAD; batch * max_len];
    for (i, row) in chunk.iter().enumerate() {
        flat[i * max_len..i * max_len + row.tokens.len()].copy_from_slice(&row.tokens);
    }
    let logits = model.logits(&flat, batch);
    let logp = log_softmax_rows(&logits);
    chunk
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let mut sum = 0.0f32;
            let mut count = 0usize;
            // Position p predicts token p+1; score continuation tokens.
            for p in (row.prefix_len - 1)..(row.tokens.len() - 1) {
                sum += logp.get(&[i * max_len + p, row.tokens[p + 1]]);
                count += 1;
            }
            (row.sample, row.choice, sum / count.max(1) as f32)
        })
        .collect()
}

fn evaluate_exact_match(model: &TransformerLm, samples: &[Sample], opts: &EvalOptions) -> Accuracy {
    let threads = opts.effective_threads().min(samples.len().max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let correct = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= samples.len() {
                    break;
                }
                let s = &samples[i];
                let generated =
                    model.generate_greedy(&s.prompt, s.reference.len(), Some(vocab::EOS));
                if generated == s.reference {
                    correct.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            });
        }
    });
    Accuracy {
        correct: correct.into_inner(),
        total: samples.len(),
    }
}

/// Evaluates every benchmark in [`crate::tasks::registry`] and returns
/// `(name, accuracy)` pairs in Table 3 order.
pub fn evaluate_all(
    model: &TransformerLm,
    world: &World,
    opts: &EvalOptions,
) -> Vec<(&'static str, Accuracy)> {
    crate::tasks::registry()
        .iter()
        .map(|b| (b.name(), evaluate(model, b.as_ref(), world, opts)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::ArcEasy;
    use lrd_nn::{ArchKind, TransformerConfig};
    use lrd_tensor::rng::Rng64;

    fn untrained_model() -> TransformerLm {
        let cfg = TransformerConfig {
            kind: ArchKind::Decoder,
            vocab_size: vocab::VOCAB_SIZE,
            d_model: 16,
            n_layers: 2,
            n_heads: 2,
            n_kv_heads: 2,
            d_ff: 32,
            max_seq: 64,
        };
        TransformerLm::new(cfg, &mut Rng64::new(3))
    }

    #[test]
    fn untrained_model_scores_near_chance() {
        let model = untrained_model();
        let world = World::new(1);
        let acc = evaluate(
            &model,
            &ArcEasy,
            &world,
            &EvalOptions {
                n_samples: 120,
                seed: 5,
                batch_size: 32,
                threads: 2,
            },
        );
        assert_eq!(acc.total, 120);
        // 4-way multiple choice: chance = 25%.
        assert!(
            (5.0..50.0).contains(&acc.percent()),
            "untrained accuracy = {acc} (expected near chance)"
        );
    }

    #[test]
    fn evaluation_is_deterministic() {
        let model = untrained_model();
        let world = World::new(1);
        let opts = EvalOptions {
            n_samples: 60,
            seed: 9,
            batch_size: 16,
            threads: 4,
        };
        let a = evaluate(&model, &ArcEasy, &world, &opts);
        let b = evaluate(&model, &ArcEasy, &world, &opts);
        assert_eq!(a, b);
    }

    #[test]
    fn batching_does_not_change_results() {
        let model = untrained_model();
        let world = World::new(2);
        let a = evaluate(
            &model,
            &ArcEasy,
            &world,
            &EvalOptions {
                n_samples: 40,
                seed: 3,
                batch_size: 4,
                threads: 1,
            },
        );
        let b = evaluate(
            &model,
            &ArcEasy,
            &world,
            &EvalOptions {
                n_samples: 40,
                seed: 3,
                batch_size: 64,
                threads: 3,
            },
        );
        assert_eq!(a, b, "batch size must not affect scoring");
    }

    #[test]
    fn exact_match_scoring_runs() {
        let model = untrained_model();
        let world = World::new(3);
        let acc = evaluate(
            &model,
            &crate::tasks::Gsm8k,
            &world,
            &EvalOptions {
                n_samples: 10,
                seed: 1,
                batch_size: 8,
                threads: 2,
            },
        );
        assert_eq!(acc.total, 10);
        // Untrained: almost certainly 0–30%.
        assert!(acc.percent() <= 40.0);
    }

    #[test]
    fn cloze_scoring_runs_on_encoder() {
        let cfg = TransformerConfig {
            kind: ArchKind::Encoder,
            vocab_size: vocab::VOCAB_SIZE,
            d_model: 16,
            n_layers: 2,
            n_heads: 2,
            n_kv_heads: 2,
            d_ff: 32,
            max_seq: 64,
        };
        let model = TransformerLm::new(cfg, &mut Rng64::new(6));
        let world = World::new(4);
        let opts = EvalOptions {
            n_samples: 60,
            seed: 8,
            batch_size: 16,
            threads: 2,
        };
        let a = evaluate(&model, &crate::tasks::BertCloze, &world, &opts);
        let b = evaluate(&model, &crate::tasks::BertCloze, &world, &opts);
        assert_eq!(a, b, "cloze scoring must be deterministic");
        assert_eq!(a.total, 60);
        assert!(
            (5.0..55.0).contains(&a.percent()),
            "untrained cloze near chance: {a}"
        );
    }

    /// Cloze task that omits the MASK token from every third prompt —
    /// regression input for the skip-instead-of-panic path.
    struct PartialMaskCloze;
    impl Benchmark for PartialMaskCloze {
        fn name(&self) -> &'static str {
            "PartialMaskCloze"
        }
        fn scoring(&self) -> ScoringMode {
            ScoringMode::Cloze
        }
        fn sample(&self, _world: &World, rng: &mut Rng64) -> Sample {
            let has_mask = rng.below(3) != 0;
            let mut prompt = vec![1usize; 8];
            if has_mask {
                prompt[3] = vocab::MASK;
            }
            Sample::multiple_choice(prompt, vec![vec![5], vec![6]], rng.below(2))
        }
    }

    #[test]
    fn cloze_without_mask_skips_instead_of_panicking() {
        let cfg = TransformerConfig {
            kind: ArchKind::Encoder,
            vocab_size: vocab::VOCAB_SIZE,
            d_model: 16,
            n_layers: 2,
            n_heads: 2,
            n_kv_heads: 2,
            d_ff: 32,
            max_seq: 64,
        };
        let model = TransformerLm::new(cfg, &mut Rng64::new(6));
        let world = World::new(4);
        let opts = EvalOptions {
            n_samples: 30,
            seed: 11,
            batch_size: 8,
            threads: 2,
        };
        let masked = PartialMaskCloze
            .samples(&world, opts.n_samples, opts.seed)
            .iter()
            .filter(|s| s.prompt.contains(&vocab::MASK))
            .count();
        assert!(
            masked < opts.n_samples,
            "seed must produce MASK-less prompts"
        );
        let skipped_before = lrd_trace::counters::get(lrd_trace::Counter::EvalClozeMissingMask);
        let acc = evaluate(&model, &PartialMaskCloze, &world, &opts);
        assert_eq!(acc.total, masked, "total counts only scoreable samples");
        assert!(acc.correct <= acc.total);
        if lrd_trace::enabled() {
            let skipped_after = lrd_trace::counters::get(lrd_trace::Counter::EvalClozeMissingMask);
            assert!(
                skipped_after - skipped_before >= (opts.n_samples - masked) as u64,
                "skipped prompts must be counted"
            );
        }
    }

    #[test]
    fn accuracy_display() {
        let a = Accuracy {
            correct: 3,
            total: 4,
        };
        assert_eq!(a.to_string(), "75.0% (3/4)");
        assert_eq!(Accuracy::default().percent(), 0.0);
    }

    #[test]
    fn accuracy_stderr() {
        // p = 0.5, n = 100 → stderr = 5 percentage points.
        let a = Accuracy {
            correct: 50,
            total: 100,
        };
        assert!((a.stderr() - 5.0).abs() < 1e-9);
        // Shrinks with sample count.
        let b = Accuracy {
            correct: 200,
            total: 400,
        };
        assert!(b.stderr() < a.stderr());
        assert_eq!(Accuracy::default().stderr(), 0.0);
    }

    #[test]
    fn mmlu_domain_breakdown_runs() {
        let model = untrained_model();
        let world = World::new(5);
        let opts = EvalOptions {
            n_samples: 20,
            seed: 2,
            batch_size: 16,
            threads: 1,
        };
        for d in 0..lrd_core_domains() {
            let bench = crate::tasks::MmluDomain(d);
            let acc = evaluate(&model, &bench, &world, &opts);
            assert_eq!(acc.total, 20);
        }
    }

    fn lrd_core_domains() -> usize {
        crate::vocab::N_DOMAINS
    }
}
