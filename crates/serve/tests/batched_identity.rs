//! Property tests: continuous-batched serving is bit-identical to
//! sequential single-session decoding.
//!
//! The server's correctness contract (`DESIGN.md` §13) is that packing
//! sessions into one batch changes *when* tokens are computed but never
//! *which* tokens come out: every kernel in the decode path is row-bit-
//! identical across batch heights. These tests drive randomized traffic
//! through [`lrd_serve::serve`] at many batch sizes and GEMM worker
//! limits and compare the produced streams token-for-token against an
//! independent reference decoder that replays each request alone through
//! the single-step [`TransformerLm::decode_step`] API. CI repeats the
//! whole suite under `LRD_FORCE_SCALAR=1` and the bf16 kernel backend,
//! so the identity is checked on every dispatch path.

use lrd_nn::{ArchKind, TransformerConfig, TransformerLm};
use lrd_serve::{argmax, generate, serve, serve_sequential, Request, ServeConfig, TrafficConfig};
use lrd_tensor::matmul::set_thread_limit;
use lrd_tensor::rng::Rng64;
use proptest::prelude::*;

fn model(seed: u64, n_layers: usize, max_seq: usize) -> TransformerLm {
    let cfg = TransformerConfig {
        kind: ArchKind::Decoder,
        vocab_size: 48,
        d_model: 16,
        n_layers,
        n_heads: 2,
        n_kv_heads: 2,
        d_ff: 32,
        max_seq,
    };
    TransformerLm::new(cfg, &mut Rng64::new(seed))
}

/// Replays one request alone: prompt prefill then greedy generation,
/// entirely on the single-session `decode_step` path. This is the ground
/// truth the server must reproduce bit-for-bit.
fn reference_stream(m: &TransformerLm, r: &Request) -> Vec<usize> {
    let max_seq = m.config().max_seq;
    let mut state = m.new_decode_state();
    let mut out = Vec::new();
    let mut logits = None;
    for &t in &r.prompt {
        logits = Some(m.decode_step(t, &mut state).expect("prompt step"));
    }
    while out.len() < r.gen_len {
        let row = logits.as_ref().expect("prompt is non-empty");
        let next = argmax(row.row(0));
        out.push(next);
        if out.len() >= r.gen_len || state.len() >= max_seq {
            break;
        }
        logits = Some(m.decode_step(next, &mut state).expect("decode step"));
    }
    out
}

fn check_trace(m: &TransformerLm, reqs: &[Request], max_batch: usize, queue_cap: usize) {
    let cfg = ServeConfig {
        max_batch,
        queue_cap,
        ..ServeConfig::default()
    };
    let out = serve(m, reqs, &cfg, "prop");
    assert_eq!(
        out.report.completed + out.report.rejected,
        out.report.offered,
        "no request may fail on a valid trace"
    );
    for c in &out.completions {
        let expect = reference_stream(m, &reqs[c.id]);
        assert_eq!(
            c.tokens, expect,
            "stream {} diverged at max_batch {max_batch}",
            c.id
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole identity: any batch size, any queue bound, any seed —
    /// every completed stream equals its single-session replay.
    #[test]
    fn batched_serving_matches_single_session_replay(
        seed in any::<u64>(),
        n_layers in 1usize..3,
        sessions in 1usize..14,
        max_batch in 1usize..17,
        burst_every in 0usize..6,
    ) {
        let m = model(seed, n_layers, 24);
        let mut tc = TrafficConfig::for_model(sessions, seed ^ 0xBEEF, 48, 24);
        tc.burst_every = burst_every;
        let reqs = generate(&tc);
        check_trace(&m, &reqs, max_batch, usize::MAX);
    }

    /// Admission pressure must drop sessions, never corrupt survivors.
    #[test]
    fn bounded_queue_keeps_survivors_bit_identical(
        seed in any::<u64>(),
        sessions in 4usize..12,
        max_batch in 1usize..5,
        queue_cap in 1usize..4,
    ) {
        let m = model(seed, 1, 24);
        let reqs = generate(&TrafficConfig::for_model(sessions, seed ^ 0xFACE, 48, 24));
        check_trace(&m, &reqs, max_batch, queue_cap);
    }

    /// GEMM worker-pool size must not reach the token streams: the packed
    /// engine splits rows across threads but accumulates each row in a
    /// fixed order.
    #[test]
    fn worker_count_is_value_neutral(
        seed in any::<u64>(),
        threads in 1usize..5,
        max_batch in 2usize..9,
    ) {
        let m = model(seed, 2, 20);
        let reqs = generate(&TrafficConfig::for_model(8, seed ^ 0xD00D, 48, 20));
        let baseline: Vec<Vec<usize>> = reqs.iter().map(|r| reference_stream(&m, r)).collect();
        let prev = set_thread_limit(threads);
        let out = serve(
            &m,
            &reqs,
            &ServeConfig { max_batch, queue_cap: usize::MAX, ..ServeConfig::default() },
            "threads",
        );
        set_thread_limit(prev);
        for c in &out.completions {
            prop_assert_eq!(&c.tokens, &baseline[c.id], "thread limit {} changed stream {}", threads, c.id);
        }
    }
}

/// Deterministic (non-proptest) cross-mode check on a bigger trace: the
/// batched server, the sequential server, and the reference replay all
/// agree, and the checksum detects that agreement.
#[test]
fn batched_and_sequential_servers_agree_on_a_big_trace() {
    let m = model(2024, 2, 32);
    let reqs = generate(&TrafficConfig::for_model(48, 7, 48, 32));
    let bat = serve(
        &m,
        &reqs,
        &ServeConfig {
            max_batch: 16,
            queue_cap: usize::MAX,
            ..ServeConfig::default()
        },
        "bat",
    );
    let seq = serve_sequential(&m, &reqs, &ServeConfig::default(), "seq");
    assert_eq!(bat.report.completed, reqs.len() as u64);
    assert_eq!(bat.report.stream_checksum, seq.report.stream_checksum);
    for c in &bat.completions {
        assert_eq!(c.tokens, reference_stream(&m, &reqs[c.id]));
    }
}
