//! Property tests: deterministic chaos injection quarantines exactly the
//! faulted sessions and never perturbs a healthy stream.
//!
//! The serving fault model's contract (`DESIGN.md` §15) is the serving
//! analogue of the sweep plane's FAILED-row invariant: injecting
//! `nan-logits` / `decode-panic` / `slow-step` faults changes *which*
//! sessions settle, but never the tokens of a session that completes.
//! Because fault rolls are keyed to (seed, session id, session-local
//! step) and every batched kernel is row-bit-identical across batch
//! heights, the settled set is independent of batch size and queue
//! bound, and every completed stream is bit-identical to the fault-free
//! run. These tests drive arbitrary fault specs, batch sizes, queue
//! bounds, and degradation knobs through [`lrd_serve::serve`] and check
//! both halves of that contract plus the accounting identity
//! `completed + rejected + failed + shed + timed_out == offered`.

use std::collections::{BTreeMap, BTreeSet};

use lrd_core::faults::FaultPlan;
use lrd_nn::{ArchKind, TransformerConfig, TransformerLm};
use lrd_serve::{
    generate, serve, serve_sequential, Request, ServeConfig, TrafficConfig, STALL_STEPS,
};
use lrd_tensor::rng::Rng64;
use proptest::prelude::*;

fn model(seed: u64, max_seq: usize) -> TransformerLm {
    let cfg = TransformerConfig {
        kind: ArchKind::Decoder,
        vocab_size: 48,
        d_model: 16,
        n_layers: 2,
        n_heads: 2,
        n_kv_heads: 2,
        d_ff: 32,
        max_seq,
    };
    TransformerLm::new(cfg, &mut Rng64::new(seed))
}

/// The fault-free ground truth: every session's stream from an unloaded,
/// uninjected run (unbounded queue, so nothing is rejected).
fn fault_free_streams(m: &TransformerLm, reqs: &[Request]) -> BTreeMap<usize, Vec<usize>> {
    let cfg = ServeConfig {
        queue_cap: usize::MAX,
        ..ServeConfig::default()
    };
    serve(m, reqs, &cfg, "reference")
        .completions
        .into_iter()
        .map(|c| (c.id, c.tokens))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The tentpole invariant: for any fault spec and any combination of
    /// batch size, queue bound, and degradation knobs, a session that
    /// completes produces exactly its fault-free stream, and every
    /// offered request is accounted for exactly once.
    #[test]
    fn healthy_streams_survive_any_fault_spec(
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        nan in (0u64..250).prop_map(|v| v as f64 / 1000.0),
        panic_rate in (0u64..250).prop_map(|v| v as f64 / 1000.0),
        slow in (0u64..250).prop_map(|v| v as f64 / 1000.0),
        sessions in 4usize..14,
        max_batch in 1usize..17,
        queue_cap in 2usize..40,
        // 0 encodes "off" for the degradation knobs.
        shed_high_water in (0usize..6).prop_map(|v| if v == 0 { usize::MAX } else { v }),
        max_admit_per_step in (0usize..4).prop_map(|v| if v == 0 { usize::MAX } else { v }),
    ) {
        let m = model(seed, 24);
        let reqs = generate(&TrafficConfig::for_model(sessions, seed ^ 0xC0DE, 48, 24));
        let reference = fault_free_streams(&m, &reqs);
        let cfg = ServeConfig {
            max_batch,
            queue_cap,
            faults: FaultPlan {
                nan_logits: nan,
                decode_panic: panic_rate,
                slow_step: slow,
                seed: fault_seed,
                ..FaultPlan::default()
            },
            deadline_steps: 2 * STALL_STEPS,
            shed_high_water,
            max_admit_per_step,
            readmit_delay_steps: 8,
        };
        let out = serve(&m, &reqs, &cfg, "chaos");
        let r = &out.report;
        prop_assert_eq!(
            r.completed + r.rejected + r.failed + r.shed + r.timed_out,
            r.offered,
            "accounting identity broken: {:?}",
            r
        );
        let settled_ids: BTreeSet<usize> = out.settled.iter().map(|s| s.id).collect();
        for c in &out.completions {
            prop_assert!(
                !settled_ids.contains(&c.id),
                "session {} both completed and settled",
                c.id
            );
            prop_assert_eq!(
                Some(&c.tokens),
                reference.get(&c.id),
                "healthy stream {} diverged from the fault-free run",
                c.id
            );
        }
    }

    /// With nothing scheduling-dependent in play (unbounded queue, no
    /// shedding), the settled set — ids *and* typed fates — is identical
    /// across every batch size and to the sequential plane: the fault
    /// set is a pure function of (seed, session, step).
    #[test]
    fn settled_sets_are_batch_size_and_plane_independent(
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        nan in (10u64..200).prop_map(|v| v as f64 / 1000.0),
        panic_rate in (10u64..200).prop_map(|v| v as f64 / 1000.0),
        slow in (0u64..200).prop_map(|v| v as f64 / 1000.0),
        sessions in 4usize..12,
    ) {
        let m = model(seed, 24);
        let reqs = generate(&TrafficConfig::for_model(sessions, seed ^ 0xFEED, 48, 24));
        let base = ServeConfig {
            queue_cap: usize::MAX,
            faults: FaultPlan {
                nan_logits: nan,
                decode_panic: panic_rate,
                slow_step: slow,
                seed: fault_seed,
                ..FaultPlan::default()
            },
            deadline_steps: 2 * STALL_STEPS,
            ..ServeConfig::default()
        };
        let seq = serve_sequential(&m, &reqs, &base, "seq");
        let mut expect = seq.settled.clone();
        expect.sort_by_key(|s| s.id);
        for max_batch in [1usize, 4, 16] {
            let bat = serve(&m, &reqs, &ServeConfig { max_batch, ..base }, "bat");
            let mut got = bat.settled.clone();
            got.sort_by_key(|s| s.id);
            prop_assert_eq!(
                &got,
                &expect,
                "settled set diverged at max_batch {}",
                max_batch
            );
            prop_assert_eq!(bat.report.stream_checksum, seq.report.stream_checksum);
        }
    }
}
