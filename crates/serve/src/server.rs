//! The continuous-batching serving loop and its sequential baseline.
//!
//! ## Packing policy
//!
//! [`serve`] keeps a *running set* of at most `max_batch` in-flight
//! sessions. Every decode step packs each running session's next input
//! token (a prompt token during prefill, its own last output during
//! generation) into one `S × d` batch and advances all of them with a
//! single [`TransformerLm::decode_step_many`] call — one batched GEMM
//! per weight per layer per step, instead of `S` skinny ones.
//!
//! ## Admission control
//!
//! Arrivals land in a bounded FIFO queue (`queue_cap`); a full queue
//! rejects the request (counted, reported — never an error). The running
//! set refills from the queue front whenever a session completes, so the
//! batch stays as full as the offered load allows.
//!
//! ## Determinism
//!
//! Virtual time drives everything: arrivals are keyed to decode-step
//! indices (see [`crate::traffic`]), the running set preserves admission
//! order, and completed sessions are removed order-stably. Wall-clock
//! readings feed only the latency histograms. Batch composition is
//! therefore a pure function of (model, trace, config), and because
//! every batched kernel in the stack is row-bit-identical across batch
//! heights (`DESIGN.md` §13), the produced token streams are bit-equal
//! to [`serve_sequential`]'s at any `max_batch`.
//!
//! ## Failure containment
//!
//! A request that cannot be served (out-of-vocabulary prompt token, a
//! prompt longer than the model's context window) fails at admission and
//! is reported in [`ServeReport::failed`] — the decode loop itself
//! validates before mutating, so a degraded request never panics the
//! server or corrupts its batch-mates.

use std::collections::VecDeque;

use lrd_nn::{DecodeState, TransformerLm};
use lrd_trace::counters::{add, Counter};
use lrd_trace::Histogram;

use crate::clock::Clock;
use crate::report::{stream_checksum, Completion, ServeOutcome, ServeReport};
use crate::traffic::Request;

/// Serving-loop parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Maximum in-flight sessions per decode batch (clamped to ≥ 1).
    pub max_batch: usize,
    /// Admission-queue bound; arrivals beyond it are rejected.
    pub queue_cap: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 32,
            queue_cap: 256,
        }
    }
}

/// Greedy decoding: index of the first maximum of `row`.
///
/// Shared by the batched and sequential paths (and the property tests'
/// reference decoder) so "same logits ⇒ same token" holds by
/// construction.
pub fn argmax(row: &[f32]) -> usize {
    let mut best = 0usize;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in row.iter().enumerate() {
        if v > best_v {
            best = i;
            best_v = v;
        }
    }
    best
}

/// One in-flight session.
struct Active {
    id: usize,
    prompt: Vec<usize>,
    gen_target: usize,
    /// Prompt tokens fed so far.
    fed: usize,
    produced: Vec<usize>,
    state: DecodeState,
    admitted_s: f64,
}

impl Active {
    /// The token this session feeds into the next decode step.
    fn next_input(&self) -> usize {
        if self.fed < self.prompt.len() {
            self.prompt[self.fed]
        } else {
            self.produced.last().copied().unwrap_or(0)
        }
    }

    /// Advances the session past one decode step whose logits row is
    /// `row`; returns `true` when a token was emitted (prefill steps
    /// before the last prompt token discard their logits).
    fn consume(&mut self, row: &[f32]) -> bool {
        if self.fed < self.prompt.len() {
            self.fed += 1;
        }
        if self.fed >= self.prompt.len() && self.produced.len() < self.gen_target {
            self.produced.push(argmax(row));
            true
        } else {
            false
        }
    }

    /// Whether the session is finished: generation target reached, or the
    /// KV cache is at the model's context window.
    fn done(&self, max_seq: usize) -> bool {
        self.produced.len() >= self.gen_target || self.state.len() >= max_seq
    }
}

/// Validates `r` against the model and builds its session, preallocating
/// the full KV-cache footprint. Returns a failure reason for requests
/// the model can never serve.
fn admit(model: &TransformerLm, r: &Request, clock: &Clock) -> Result<Active, &'static str> {
    let cfg = model.config();
    if r.prompt.is_empty() {
        return Err("empty prompt");
    }
    if r.prompt.len() > cfg.max_seq {
        return Err("prompt longer than the model's context window");
    }
    if r.prompt.iter().any(|&t| t >= cfg.vocab_size) {
        return Err("prompt token outside the vocabulary");
    }
    Ok(Active {
        id: r.id,
        prompt: r.prompt.clone(),
        gen_target: r.gen_len,
        fed: 0,
        produced: Vec::with_capacity(r.gen_len),
        state: model.new_decode_state(),
        admitted_s: clock.seconds(),
    })
}

/// Shared accumulator for both serving modes.
struct Metrics {
    rejected: u64,
    failed: u64,
    batches: u64,
    tokens: u64,
    occupancy: u64,
    ttft_ms: Histogram,
    per_token_ms: Histogram,
    completions: Vec<Completion>,
}

impl Metrics {
    fn new() -> Metrics {
        Metrics {
            rejected: 0,
            failed: 0,
            batches: 0,
            tokens: 0,
            occupancy: 0,
            ttft_ms: Histogram::new(),
            per_token_ms: Histogram::new(),
            completions: Vec::new(),
        }
    }

    fn finish(self, label: &str, offered: usize, wall_s: f64) -> ServeOutcome {
        let report = ServeReport {
            label: label.to_string(),
            offered: offered as u64,
            rejected: self.rejected,
            failed: self.failed,
            completed: self.completions.len() as u64,
            batches: self.batches,
            tokens: self.tokens,
            mean_batch: if self.batches == 0 {
                0.0
            } else {
                self.occupancy as f64 / self.batches as f64
            },
            wall_s,
            tokens_per_s: if wall_s > 0.0 {
                self.tokens as f64 / wall_s
            } else {
                0.0
            },
            ttft_ms: self.ttft_ms.summary(),
            per_token_ms: self.per_token_ms.summary(),
            stream_checksum: stream_checksum(&self.completions),
        };
        ServeOutcome {
            report,
            completions: self.completions,
        }
    }
}

/// Runs the continuous-batching server over `requests` and returns the
/// aggregate report plus every completed token stream.
///
/// Serving never fails as a whole: individual requests degrade to
/// rejected (queue full) or failed (invalid for this model, or caught in
/// a failed decode batch) entries of the report.
pub fn serve(
    model: &TransformerLm,
    requests: &[Request],
    cfg: &ServeConfig,
    label: &str,
) -> ServeOutcome {
    let max_batch = cfg.max_batch.max(1);
    let max_seq = model.config().max_seq;
    let clock = Clock::start();
    let mut m = Metrics::new();

    // Arrival order: by virtual step, ties by id (the generator's order).
    let mut order: Vec<usize> = (0..requests.len()).collect();
    order.sort_by_key(|&i| (requests[i].arrival_step, requests[i].id));
    let mut next_arrival = 0usize;

    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut running: Vec<Active> = Vec::new();
    let mut step = 0u64;

    loop {
        // 1. Enqueue arrivals due at the current virtual step.
        while next_arrival < order.len() && requests[order[next_arrival]].arrival_step <= step {
            let idx = order[next_arrival];
            next_arrival += 1;
            if queue.len() >= cfg.queue_cap {
                m.rejected += 1;
                add(Counter::ServeSessionsRejected, 1);
            } else {
                queue.push_back(idx);
                add(Counter::ServeSessionsAdmitted, 1);
            }
        }
        // 2. Refill the running set from the queue front.
        while running.len() < max_batch {
            let Some(idx) = queue.pop_front() else { break };
            match admit(model, &requests[idx], &clock) {
                Ok(a) => running.push(a),
                Err(reason) => {
                    m.failed += 1;
                    lrd_trace::warn(format!(
                        "serve: request {} failed at admission: {reason}",
                        requests[idx].id
                    ));
                }
            }
        }
        // 3. Idle: fast-forward virtual time to the next arrival, or stop.
        if running.is_empty() {
            match order.get(next_arrival) {
                Some(&idx) => {
                    step = requests[idx].arrival_step;
                    continue;
                }
                None => break,
            }
        }
        // 4. Pack one decode step across every running session.
        let t0 = clock.seconds();
        let tokens: Vec<usize> = running.iter().map(Active::next_input).collect();
        let logits = {
            let mut states: Vec<&mut DecodeState> =
                running.iter_mut().map(|a| &mut a.state).collect();
            model.decode_step_many(&tokens, &mut states)
        };
        m.batches += 1;
        m.occupancy += running.len() as u64;
        add(Counter::ServeDecodeBatches, 1);
        match logits {
            Ok(logits) => {
                let dt_ms = (clock.seconds() - t0) * 1e3;
                let now_s = clock.seconds();
                for (i, a) in running.iter_mut().enumerate() {
                    if a.consume(logits.row(i)) {
                        m.tokens += 1;
                        add(Counter::ServeTokensGenerated, 1);
                        m.per_token_ms.record(dt_ms);
                        if a.produced.len() == 1 {
                            m.ttft_ms.record((now_s - a.admitted_s) * 1e3);
                        }
                    }
                }
                // Order-stable removal keeps future batch composition
                // deterministic.
                let mut still = Vec::with_capacity(running.len());
                for a in running.drain(..) {
                    if a.done(max_seq) {
                        add(Counter::ServeSessionsCompleted, 1);
                        m.completions.push(Completion {
                            id: a.id,
                            tokens: a.produced,
                        });
                    } else {
                        still.push(a);
                    }
                }
                running = still;
            }
            Err(e) => {
                // Should be unreachable — admission validated every
                // session — but a decode error must degrade, not panic:
                // fail the whole batch and keep serving the queue.
                lrd_trace::warn(format!(
                    "serve: decode batch of {} session(s) failed: {e}",
                    running.len()
                ));
                m.failed += running.len() as u64;
                running.clear();
            }
        }
        step += 1;
    }
    let wall = clock.seconds();
    m.finish(label, requests.len(), wall)
}

/// The sequential baseline: serves the same trace one session at a time,
/// one token per step, on the single-session
/// [`TransformerLm::decode_step`] path. Same metrics, same counters —
/// this is the "no continuous batching" ablation the speedup is measured
/// against.
pub fn serve_sequential(model: &TransformerLm, requests: &[Request], label: &str) -> ServeOutcome {
    let max_seq = model.config().max_seq;
    let clock = Clock::start();
    let mut m = Metrics::new();
    let mut order: Vec<usize> = (0..requests.len()).collect();
    order.sort_by_key(|&i| (requests[i].arrival_step, requests[i].id));
    for idx in order {
        let r = &requests[idx];
        add(Counter::ServeSessionsAdmitted, 1);
        let mut a = match admit(model, r, &clock) {
            Ok(a) => a,
            Err(reason) => {
                m.failed += 1;
                lrd_trace::warn(format!(
                    "serve: request {} failed at admission: {reason}",
                    r.id
                ));
                continue;
            }
        };
        while !a.done(max_seq) {
            let t0 = clock.seconds();
            let step = model.decode_step(a.next_input(), &mut a.state);
            m.batches += 1;
            m.occupancy += 1;
            add(Counter::ServeDecodeBatches, 1);
            match step {
                Ok(logits) => {
                    let dt_ms = (clock.seconds() - t0) * 1e3;
                    if a.consume(logits.row(0)) {
                        m.tokens += 1;
                        add(Counter::ServeTokensGenerated, 1);
                        m.per_token_ms.record(dt_ms);
                        if a.produced.len() == 1 {
                            m.ttft_ms.record((clock.seconds() - a.admitted_s) * 1e3);
                        }
                    }
                }
                Err(e) => {
                    lrd_trace::warn(format!("serve: request {} failed mid-decode: {e}", r.id));
                    m.failed += 1;
                    break;
                }
            }
        }
        if a.done(max_seq) {
            add(Counter::ServeSessionsCompleted, 1);
            m.completions.push(Completion {
                id: a.id,
                tokens: a.produced,
            });
        }
    }
    let wall = clock.seconds();
    m.finish(label, requests.len(), wall)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{generate, TrafficConfig};
    use lrd_nn::{ArchKind, TransformerConfig};
    use lrd_tensor::rng::Rng64;

    fn tiny() -> TransformerLm {
        let cfg = TransformerConfig {
            kind: ArchKind::Decoder,
            vocab_size: 32,
            d_model: 8,
            n_layers: 2,
            n_heads: 2,
            n_kv_heads: 2,
            d_ff: 16,
            max_seq: 24,
        };
        TransformerLm::new(cfg, &mut Rng64::new(5))
    }

    fn trace(sessions: usize) -> Vec<crate::traffic::Request> {
        generate(&TrafficConfig::for_model(sessions, 11, 32, 24))
    }

    #[test]
    fn batched_streams_match_sequential() {
        let model = tiny();
        let reqs = trace(12);
        let seq = serve_sequential(&model, &reqs, "seq");
        for max_batch in [1usize, 2, 5, 16] {
            let cfg = ServeConfig {
                max_batch,
                queue_cap: usize::MAX,
            };
            let bat = serve(&model, &reqs, &cfg, "bat");
            assert_eq!(bat.report.completed, seq.report.completed);
            assert_eq!(
                bat.report.stream_checksum, seq.report.stream_checksum,
                "streams diverged at max_batch {max_batch}"
            );
            let mut a = bat.completions.clone();
            let mut b = seq.completions.clone();
            a.sort_by_key(|c| c.id);
            b.sort_by_key(|c| c.id);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn bounded_queue_rejects_overflow() {
        let model = tiny();
        // Everyone arrives at step 0: with one slot running and one
        // queued, the rest must be rejected.
        let mut reqs = trace(8);
        for r in &mut reqs {
            r.arrival_step = 0;
        }
        let cfg = ServeConfig {
            max_batch: 1,
            queue_cap: 1,
        };
        let out = serve(&model, &reqs, &cfg, "tiny-queue");
        assert!(out.report.rejected > 0, "expected rejections");
        assert_eq!(
            out.report.completed + out.report.rejected + out.report.failed,
            out.report.offered
        );
    }

    #[test]
    fn invalid_requests_degrade_to_failed() {
        let model = tiny();
        let mut reqs = trace(3);
        reqs[0].prompt = vec![999]; // out of vocabulary
        reqs[1].prompt = vec![1; 25]; // longer than max_seq
        let out = serve(&model, &reqs, &ServeConfig::default(), "degraded");
        assert_eq!(out.report.failed, 2);
        assert_eq!(out.report.completed, 1);
    }

    #[test]
    fn report_accounts_for_every_request() {
        let model = tiny();
        let reqs = trace(20);
        let out = serve(&model, &reqs, &ServeConfig::default(), "acct");
        let r = &out.report;
        assert_eq!(r.offered, 20);
        assert_eq!(r.completed + r.rejected + r.failed, r.offered);
        assert_eq!(r.completed as usize, out.completions.len());
        assert_eq!(
            r.tokens,
            out.completions
                .iter()
                .map(|c| c.tokens.len() as u64)
                .sum::<u64>()
        );
        assert_eq!(r.per_token_ms.count, r.tokens);
        assert_eq!(r.ttft_ms.count, r.completed);
        assert!(r.mean_batch >= 1.0);
    }
}
