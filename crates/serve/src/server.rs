//! The continuous-batching serving loop and its sequential baseline.
//!
//! ## Packing policy
//!
//! [`serve`] keeps a *running set* of at most `max_batch` in-flight
//! sessions. Every decode step packs each running session's next input
//! token (a prompt token during prefill, its own last output during
//! generation) into one `S × d` batch and advances all of them with a
//! single [`TransformerLm::decode_step_many`] call — one batched GEMM
//! per weight per layer per step, instead of `S` skinny ones.
//!
//! ## Admission control and graceful degradation
//!
//! Arrivals land in a bounded FIFO queue (`queue_cap`); a full queue
//! rejects the request (counted, reported — never an error). The running
//! set refills from the queue front, at most `max_admit_per_step` per
//! decode step, whenever slots free up.
//!
//! Under overload the server degrades instead of queueing unboundedly:
//! when queue depth exceeds `shed_high_water`, the newest entries are
//! shed from the queue back. A shed session gets exactly one re-admission
//! attempt, `readmit_delay_steps` virtual steps later; shed a second time
//! (or re-admitted into a full queue) it settles permanently as
//! [`SessionFate::Shed`]. Separately, each session carries a virtual-time
//! deadline: once its session-local decode steps plus stall penalties
//! exceed `deadline_steps` it settles as [`SessionFate::TimedOut`] and
//! frees its slot.
//!
//! ## Fault injection and quarantine
//!
//! The serving plane reuses the sweep runtime's deterministic fault model
//! (`lrd-core::faults`). Serve-side kinds — `nan-logits`, `decode-panic`,
//! `slow-step` — roll as a pure function of (seed, session id,
//! session-local decode step), so the injected fault set is identical
//! across batch sizes, queue bounds, and thread counts. Each slot's
//! post-decode processing runs behind a `catch_unwind` fence plus a
//! non-finite-logits guard on its own row; a faulted session settles as
//! [`SessionFate::Failed`] with a typed [`FailReason`] and is evicted
//! order-stably. A `slow-step` firing stalls the session for
//! [`STALL_STEPS`] iterations: it keeps its slot but is not packed, and
//! the stall counts against its deadline.
//!
//! ## Determinism
//!
//! Virtual time drives everything: arrivals are keyed to decode-step
//! indices (see [`crate::traffic`]), the running set preserves admission
//! order, and settled sessions are removed order-stably. Wall-clock
//! readings feed only the latency histograms. Batch composition is
//! therefore a pure function of (model, trace, config), and because
//! every batched kernel in the stack is row-bit-identical across batch
//! heights (`DESIGN.md` §13), evicting a faulted session changes only
//! *scheduling*, never values: every healthy session's token stream is
//! bit-identical to a fault-free run and to [`serve_sequential`]'s at any
//! `max_batch` (property-tested in `tests/chaos_quarantine.rs`).
//!
//! ## Failure containment
//!
//! A request that cannot be served (out-of-vocabulary prompt token, a
//! prompt longer than the model's context window) fails at admission;
//! a numeric fault or slot panic mid-decode is quarantined as above. In
//! every case the session settles as a typed [`Settled`] entry — the
//! decode loop never panics the server or corrupts its batch-mates.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};

use lrd_core::faults::{FaultKind, FaultPlan};
use lrd_nn::{DecodeState, TransformerLm};
use lrd_trace::counters::{add, Counter};
use lrd_trace::Histogram;

use crate::clock::Clock;
use crate::report::{
    stream_checksum, Completion, FailReason, ServeOutcome, ServeReport, SessionFate, Settled,
};
use crate::traffic::Request;

/// Virtual decode steps a `slow-step` firing stalls its session for: the
/// session occupies its batch slot without being packed, and the full
/// stall length counts against its virtual-time deadline.
pub const STALL_STEPS: u64 = 64;

/// Serving-loop parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Maximum in-flight sessions per decode batch (clamped to ≥ 1).
    pub max_batch: usize,
    /// Admission-queue bound; arrivals beyond it are rejected.
    pub queue_cap: usize,
    /// Serve-plane fault plan; [`FaultPlan::default`] injects nothing.
    pub faults: FaultPlan,
    /// Virtual-time deadline per session, measured in session-local
    /// decode steps plus stall penalties (never wall clock or queue
    /// position, so the timed-out set is batch-size-independent).
    /// `u64::MAX` disables deadlines.
    pub deadline_steps: u64,
    /// Queue depth above which load shedding pops the queue back.
    /// `usize::MAX` disables shedding.
    pub shed_high_water: usize,
    /// Sessions admitted from the queue into the running set per decode
    /// step; bounding this lets bursts actually build queue depth.
    pub max_admit_per_step: usize,
    /// Virtual steps a shed session waits before its single re-admission
    /// attempt.
    pub readmit_delay_steps: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 32,
            queue_cap: 256,
            faults: FaultPlan::default(),
            deadline_steps: u64::MAX,
            shed_high_water: usize::MAX,
            max_admit_per_step: usize::MAX,
            readmit_delay_steps: STALL_STEPS,
        }
    }
}

/// Greedy decoding: index of the first maximum of `row`.
///
/// Shared by the batched and sequential paths (and the property tests'
/// reference decoder) so "same logits ⇒ same token" holds by
/// construction.
pub fn argmax(row: &[f32]) -> usize {
    let mut best = 0usize;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in row.iter().enumerate() {
        if v > best_v {
            best = i;
            best_v = v;
        }
    }
    best
}

/// One in-flight session.
struct Active {
    id: usize,
    prompt: Vec<usize>,
    gen_target: usize,
    /// Prompt tokens fed so far.
    fed: usize,
    produced: Vec<usize>,
    state: DecodeState,
    admitted_s: f64,
    /// Session-local decode steps completed — the fault-roll and deadline
    /// clock, deliberately independent of global step counters and batch
    /// composition.
    local_steps: u64,
    /// Remaining stall iterations from a `slow-step` fault (batched path
    /// only; the session holds its slot but is not packed while > 0).
    stall: u64,
    /// Accumulated stall penalty charged against the deadline.
    penalty: u64,
}

impl Active {
    /// The token this session feeds into the next decode step.
    fn next_input(&self) -> usize {
        if self.fed < self.prompt.len() {
            self.prompt[self.fed]
        } else {
            self.produced.last().copied().unwrap_or(0)
        }
    }

    /// Advances the session past one decode step whose logits row is
    /// `row`; returns `true` when a token was emitted (prefill steps
    /// before the last prompt token discard their logits).
    fn consume(&mut self, row: &[f32]) -> bool {
        if self.fed < self.prompt.len() {
            self.fed += 1;
        }
        if self.fed >= self.prompt.len() && self.produced.len() < self.gen_target {
            self.produced.push(argmax(row));
            true
        } else {
            false
        }
    }

    /// Whether the session is finished: generation target reached, or the
    /// KV cache is at the model's context window.
    fn done(&self, max_seq: usize) -> bool {
        self.produced.len() >= self.gen_target || self.state.len() >= max_seq
    }

    /// The deadline clock: session-local steps plus stall penalties. A
    /// fault-free session's clock never exceeds `max_seq`, so any
    /// `deadline_steps ≥ max_seq` only ever times out slow-stepped
    /// sessions.
    fn deadline_clock(&self) -> u64 {
        self.local_steps.saturating_add(self.penalty)
    }
}

/// What one slot's fenced post-decode processing produced.
enum SlotStep {
    /// The row was finite and consumed; `true` when a token was emitted.
    Emitted(bool),
    /// The non-finite guard tripped on this session's logits row.
    NonFinite,
}

/// Runs one session's share of a decode step behind the quarantine
/// fence: the injected-panic roll, the non-finite-logits guard, and the
/// greedy consume. A panic here (injected or real) unwinds only this
/// slot; the caller settles the session and its batch-mates never notice.
fn fenced_slot_step(a: &mut Active, row: &[f32], plan: &FaultPlan) -> Result<SlotStep, FailReason> {
    let s = a.local_steps;
    let id = a.id;
    let caught = catch_unwind(AssertUnwindSafe(|| {
        if plan.serve_active() && plan.roll_session(FaultKind::DecodePanic, id, s) {
            lrd_core::faults::injected_decode_panic(id, s);
        }
        if row.iter().any(|v| !v.is_finite()) {
            return SlotStep::NonFinite;
        }
        SlotStep::Emitted(a.consume(row))
    }));
    match caught {
        Ok(SlotStep::NonFinite) => Err(FailReason::NonFiniteLogits),
        Ok(step) => Ok(step),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(FailReason::Panic(msg))
        }
    }
}

/// Validates `r` against the model and builds its session, preallocating
/// the full KV-cache footprint. Returns a failure reason for requests
/// the model can never serve.
fn admit(model: &TransformerLm, r: &Request, clock: &Clock) -> Result<Active, &'static str> {
    let cfg = model.config();
    if r.prompt.is_empty() {
        return Err("empty prompt");
    }
    if r.prompt.len() > cfg.max_seq {
        return Err("prompt longer than the model's context window");
    }
    if r.prompt.iter().any(|&t| t >= cfg.vocab_size) {
        return Err("prompt token outside the vocabulary");
    }
    Ok(Active {
        id: r.id,
        prompt: r.prompt.clone(),
        gen_target: r.gen_len,
        fed: 0,
        produced: Vec::with_capacity(r.gen_len),
        state: model.new_decode_state(),
        admitted_s: clock.seconds(),
        local_steps: 0,
        stall: 0,
        penalty: 0,
    })
}

/// Shared accumulator for both serving modes.
struct Metrics {
    rejected: u64,
    failed: u64,
    shed: u64,
    timed_out: u64,
    readmitted: u64,
    batches: u64,
    tokens: u64,
    occupancy: u64,
    ttft_ms: Histogram,
    per_token_ms: Histogram,
    completions: Vec<Completion>,
    settled: Vec<Settled>,
}

impl Metrics {
    fn new() -> Metrics {
        Metrics {
            rejected: 0,
            failed: 0,
            shed: 0,
            timed_out: 0,
            readmitted: 0,
            batches: 0,
            tokens: 0,
            occupancy: 0,
            ttft_ms: Histogram::new(),
            per_token_ms: Histogram::new(),
            completions: Vec::new(),
            settled: Vec::new(),
        }
    }

    /// Settles session `id` with a terminal fate: bumps the matching
    /// breakdown and counter and records the typed entry. Deliberately
    /// quiet — a chaos run settles hundreds of sessions and a warn line
    /// per injection would bury real diagnostics; the typed `settled`
    /// list and the counters are the observable record.
    fn settle(&mut self, id: usize, fate: SessionFate) {
        match fate {
            SessionFate::Failed(_) => {
                self.failed += 1;
                add(Counter::ServeSessionsFailed, 1);
            }
            SessionFate::TimedOut => {
                self.timed_out += 1;
                add(Counter::ServeSessionsTimedOut, 1);
            }
            SessionFate::Shed => {
                self.shed += 1;
            }
        }
        self.settled.push(Settled { id, fate });
    }

    fn finish(self, label: &str, offered: usize, wall_s: f64) -> ServeOutcome {
        let healthy_tokens: u64 = self.completions.iter().map(|c| c.tokens.len() as u64).sum();
        let report = ServeReport {
            label: label.to_string(),
            offered: offered as u64,
            rejected: self.rejected,
            failed: self.failed,
            shed: self.shed,
            timed_out: self.timed_out,
            readmitted: self.readmitted,
            completed: self.completions.len() as u64,
            batches: self.batches,
            tokens: self.tokens,
            mean_batch: if self.batches == 0 {
                0.0
            } else {
                self.occupancy as f64 / self.batches as f64
            },
            wall_s,
            tokens_per_s: if wall_s > 0.0 {
                self.tokens as f64 / wall_s
            } else {
                0.0
            },
            healthy_tokens,
            goodput_tokens_per_s: if wall_s > 0.0 {
                healthy_tokens as f64 / wall_s
            } else {
                0.0
            },
            ttft_ms: self.ttft_ms.summary(),
            per_token_ms: self.per_token_ms.summary(),
            stream_checksum: stream_checksum(&self.completions),
        };
        ServeOutcome {
            report,
            completions: self.completions,
            settled: self.settled,
        }
    }
}

/// Rolls the `slow-step` fault for the step just completed and applies
/// its stall penalty; then checks the deadline. Shared by both serving
/// modes so the timed-out set is identical between them. Returns the
/// fate, if any, that settles the session.
fn post_step_faults(a: &mut Active, cfg: &ServeConfig, max_seq: usize) -> Option<SessionFate> {
    let s = a.local_steps;
    if cfg.faults.serve_active() && cfg.faults.roll_session(FaultKind::SlowStep, a.id, s) {
        a.stall = STALL_STEPS;
        a.penalty += STALL_STEPS;
    }
    a.local_steps += 1;
    if !a.done(max_seq) && a.deadline_clock() > cfg.deadline_steps {
        return Some(SessionFate::TimedOut);
    }
    None
}

/// Runs the continuous-batching server over `requests` and returns the
/// aggregate report, every completed token stream, and every settled
/// session's typed fate.
///
/// Serving never fails as a whole: individual requests degrade to
/// rejected (queue full) or settled (failed / shed / timed-out) entries
/// of the report.
pub fn serve(
    model: &TransformerLm,
    requests: &[Request],
    cfg: &ServeConfig,
    label: &str,
) -> ServeOutcome {
    let max_batch = cfg.max_batch.max(1);
    let max_seq = model.config().max_seq;
    let clock = Clock::start();
    let mut m = Metrics::new();

    // Arrival order: by virtual step, ties by id (the generator's order).
    let mut order: Vec<usize> = (0..requests.len()).collect();
    order.sort_by_key(|&i| (requests[i].arrival_step, requests[i].id));
    let mut next_arrival = 0usize;

    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut running: Vec<Active> = Vec::new();
    // Shed sessions awaiting their one re-admission: (due step, request
    // index). Due steps are non-decreasing by construction.
    let mut readmit: VecDeque<(u64, usize)> = VecDeque::new();
    let mut shed_once = vec![false; requests.len()];
    let mut step = 0u64;

    loop {
        // 1. Enqueue arrivals due at the current virtual step.
        while next_arrival < order.len() && requests[order[next_arrival]].arrival_step <= step {
            let idx = order[next_arrival];
            next_arrival += 1;
            if queue.len() >= cfg.queue_cap {
                m.rejected += 1;
                add(Counter::ServeSessionsRejected, 1);
            } else {
                queue.push_back(idx);
                add(Counter::ServeSessionsAdmitted, 1);
            }
        }
        // 2. Re-admit shed sessions whose delay has elapsed; a full queue
        // settles them permanently (the attempt was their one chance).
        while let Some(&(due, idx)) = readmit.front() {
            if due > step {
                break;
            }
            readmit.pop_front();
            if queue.len() >= cfg.queue_cap {
                m.settle(requests[idx].id, SessionFate::Shed);
            } else {
                queue.push_back(idx);
                m.readmitted += 1;
                add(Counter::ServeSessionsReadmitted, 1);
            }
        }
        // 3. Load shedding: above the high-water mark the queue back —
        // the newest entrants — is shed. First shed schedules the
        // re-admission attempt; a second settles the session.
        while queue.len() > cfg.shed_high_water {
            let Some(idx) = queue.pop_back() else { break };
            add(Counter::ServeSessionsShed, 1);
            if shed_once[idx] {
                m.settle(requests[idx].id, SessionFate::Shed);
            } else {
                shed_once[idx] = true;
                readmit.push_back((step + cfg.readmit_delay_steps, idx));
            }
        }
        // 4. Refill the running set from the queue front, boundedly (the
        // clamp to ≥ 1 keeps a zero bound from starving the queue
        // forever).
        let max_admit = cfg.max_admit_per_step.max(1);
        let mut admitted_now = 0usize;
        while running.len() < max_batch && admitted_now < max_admit {
            let Some(idx) = queue.pop_front() else { break };
            admitted_now += 1;
            match admit(model, &requests[idx], &clock) {
                Ok(a) => running.push(a),
                Err(reason) => {
                    lrd_trace::warn(format!(
                        "serve: request {} failed at admission: {reason}",
                        requests[idx].id
                    ));
                    m.settle(
                        requests[idx].id,
                        SessionFate::Failed(FailReason::Admission(reason)),
                    );
                }
            }
        }
        // 5. Idle: fast-forward virtual time to the next event, or stop.
        if running.is_empty() && queue.is_empty() {
            let next_arrival_step = order.get(next_arrival).map(|&i| requests[i].arrival_step);
            let next_readmit_step = readmit.front().map(|&(due, _)| due);
            match (next_arrival_step, next_readmit_step) {
                (Some(a), Some(r)) => {
                    step = a.min(r);
                    continue;
                }
                (Some(a), None) => {
                    step = a;
                    continue;
                }
                (None, Some(r)) => {
                    step = r;
                    continue;
                }
                (None, None) => break,
            }
        }
        // 6. Pack one decode step across every non-stalled session.
        let is_packed: Vec<bool> = running.iter().map(|a| a.stall == 0).collect();
        let packed: Vec<usize> = (0..running.len()).filter(|&i| is_packed[i]).collect();
        let mut fates: Vec<Option<SessionFate>> = (0..running.len()).map(|_| None).collect();
        if !packed.is_empty() {
            let t0 = clock.seconds();
            let tokens: Vec<usize> = packed.iter().map(|&i| running[i].next_input()).collect();
            let logits = {
                let mut states: Vec<&mut DecodeState> = running
                    .iter_mut()
                    .enumerate()
                    .filter(|&(i, _)| is_packed[i])
                    .map(|(_, a)| &mut a.state)
                    .collect();
                model.decode_step_many(&tokens, &mut states)
            };
            m.batches += 1;
            m.occupancy += packed.len() as u64;
            add(Counter::ServeDecodeBatches, 1);
            match logits {
                Ok(mut logits) => {
                    let dt_ms = (clock.seconds() - t0) * 1e3;
                    let now_s = clock.seconds();
                    for (row, &ri) in packed.iter().enumerate() {
                        let a = &mut running[ri];
                        // An injected nan-logits fault poisons the actual
                        // row so detection takes the same non-finite
                        // guard a real numeric fault would.
                        if cfg.faults.serve_active()
                            && cfg
                                .faults
                                .roll_session(FaultKind::NanLogits, a.id, a.local_steps)
                        {
                            logits.row_mut(row)[0] = f32::NAN;
                        }
                        match fenced_slot_step(a, logits.row(row), &cfg.faults) {
                            Ok(SlotStep::Emitted(emitted)) => {
                                if emitted {
                                    m.tokens += 1;
                                    add(Counter::ServeTokensGenerated, 1);
                                    m.per_token_ms.record(dt_ms);
                                    if a.produced.len() == 1 {
                                        m.ttft_ms.record((now_s - a.admitted_s) * 1e3);
                                    }
                                }
                                fates[ri] = post_step_faults(a, cfg, max_seq);
                            }
                            Ok(SlotStep::NonFinite) | Err(FailReason::NonFiniteLogits) => {
                                fates[ri] = Some(SessionFate::Failed(FailReason::NonFiniteLogits));
                            }
                            Err(reason) => {
                                fates[ri] = Some(SessionFate::Failed(reason));
                            }
                        }
                    }
                }
                Err(e) => {
                    // Should be unreachable — admission validated every
                    // session — but a decode error must degrade, not
                    // panic: settle the whole batch and keep serving.
                    lrd_trace::warn(format!(
                        "serve: decode batch of {} session(s) failed: {e}",
                        packed.len()
                    ));
                    for &ri in &packed {
                        fates[ri] =
                            Some(SessionFate::Failed(FailReason::DecodeError(e.to_string())));
                    }
                }
            }
        }
        // 7. Advance stalls and remove settled/completed sessions
        // order-stably so future batch composition stays deterministic.
        let mut still = Vec::with_capacity(running.len());
        for (i, mut a) in running.drain(..).enumerate() {
            if !is_packed[i] {
                a.stall -= 1;
            }
            if let Some(fate) = fates[i].take() {
                m.settle(a.id, fate);
            } else if is_packed[i] && a.done(max_seq) {
                add(Counter::ServeSessionsCompleted, 1);
                m.completions.push(Completion {
                    id: a.id,
                    tokens: a.produced,
                });
            } else {
                still.push(a);
            }
        }
        running = still;
        step += 1;
    }
    let wall = clock.seconds();
    m.finish(label, requests.len(), wall)
}

/// The sequential baseline: serves the same trace one session at a time,
/// one token per step, on the single-session
/// [`TransformerLm::decode_step`] path. Same metrics, same counters,
/// same quarantine fence and fault rolls — this is both the "no
/// continuous batching" ablation the speedup is measured against and the
/// like-for-like baseline of the chaos divergence checks. Queue-shaped
/// config (`queue_cap`, `shed_high_water`, `max_admit_per_step`) does
/// not apply: with no batch there is no queue to bound.
pub fn serve_sequential(
    model: &TransformerLm,
    requests: &[Request],
    cfg: &ServeConfig,
    label: &str,
) -> ServeOutcome {
    let max_seq = model.config().max_seq;
    let clock = Clock::start();
    let mut m = Metrics::new();
    let mut order: Vec<usize> = (0..requests.len()).collect();
    order.sort_by_key(|&i| (requests[i].arrival_step, requests[i].id));
    for idx in order {
        let r = &requests[idx];
        add(Counter::ServeSessionsAdmitted, 1);
        let mut a = match admit(model, r, &clock) {
            Ok(a) => a,
            Err(reason) => {
                lrd_trace::warn(format!(
                    "serve: request {} failed at admission: {reason}",
                    r.id
                ));
                m.settle(r.id, SessionFate::Failed(FailReason::Admission(reason)));
                continue;
            }
        };
        let mut fate = None;
        while fate.is_none() && !a.done(max_seq) {
            let t0 = clock.seconds();
            let step = model.decode_step(a.next_input(), &mut a.state);
            m.batches += 1;
            m.occupancy += 1;
            add(Counter::ServeDecodeBatches, 1);
            match step {
                Ok(mut logits) => {
                    // Same poisoning, fence, and guard as the batched
                    // path: the rolls are session-local, so the fault
                    // set (and thus the settled set) is identical.
                    if cfg.faults.serve_active()
                        && cfg
                            .faults
                            .roll_session(FaultKind::NanLogits, a.id, a.local_steps)
                    {
                        logits.row_mut(0)[0] = f32::NAN;
                    }
                    let dt_ms = (clock.seconds() - t0) * 1e3;
                    match fenced_slot_step(&mut a, logits.row(0), &cfg.faults) {
                        Ok(SlotStep::Emitted(emitted)) => {
                            if emitted {
                                m.tokens += 1;
                                add(Counter::ServeTokensGenerated, 1);
                                m.per_token_ms.record(dt_ms);
                                if a.produced.len() == 1 {
                                    m.ttft_ms.record((clock.seconds() - a.admitted_s) * 1e3);
                                }
                            }
                            // The sequential plane has no slot to stall,
                            // but the penalty still accrues so both
                            // planes time out the same sessions.
                            fate = post_step_faults(&mut a, cfg, max_seq);
                            a.stall = 0;
                        }
                        Ok(SlotStep::NonFinite) | Err(FailReason::NonFiniteLogits) => {
                            fate = Some(SessionFate::Failed(FailReason::NonFiniteLogits));
                        }
                        Err(reason) => {
                            fate = Some(SessionFate::Failed(reason));
                        }
                    }
                }
                Err(e) => {
                    lrd_trace::warn(format!("serve: request {} failed mid-decode: {e}", r.id));
                    fate = Some(SessionFate::Failed(FailReason::DecodeError(e.to_string())));
                }
            }
        }
        if let Some(fate) = fate {
            m.settle(a.id, fate);
        } else if a.done(max_seq) {
            add(Counter::ServeSessionsCompleted, 1);
            m.completions.push(Completion {
                id: a.id,
                tokens: a.produced,
            });
        }
    }
    let wall = clock.seconds();
    m.finish(label, requests.len(), wall)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{generate, TrafficConfig};
    use lrd_nn::{ArchKind, TransformerConfig};
    use lrd_tensor::rng::Rng64;

    fn tiny() -> TransformerLm {
        let cfg = TransformerConfig {
            kind: ArchKind::Decoder,
            vocab_size: 32,
            d_model: 8,
            n_layers: 2,
            n_heads: 2,
            n_kv_heads: 2,
            d_ff: 16,
            max_seq: 24,
        };
        TransformerLm::new(cfg, &mut Rng64::new(5))
    }

    fn trace(sessions: usize) -> Vec<crate::traffic::Request> {
        generate(&TrafficConfig::for_model(sessions, 11, 32, 24))
    }

    fn chaos_plan(nan: f64, panic: f64, slow: f64) -> FaultPlan {
        FaultPlan {
            nan_logits: nan,
            decode_panic: panic,
            slow_step: slow,
            seed: 42,
            ..FaultPlan::default()
        }
    }

    #[test]
    fn batched_streams_match_sequential() {
        let model = tiny();
        let reqs = trace(12);
        let seq = serve_sequential(&model, &reqs, &ServeConfig::default(), "seq");
        for max_batch in [1usize, 2, 5, 16] {
            let cfg = ServeConfig {
                max_batch,
                queue_cap: usize::MAX,
                ..ServeConfig::default()
            };
            let bat = serve(&model, &reqs, &cfg, "bat");
            assert_eq!(bat.report.completed, seq.report.completed);
            assert_eq!(
                bat.report.stream_checksum, seq.report.stream_checksum,
                "streams diverged at max_batch {max_batch}"
            );
            let mut a = bat.completions.clone();
            let mut b = seq.completions.clone();
            a.sort_by_key(|c| c.id);
            b.sort_by_key(|c| c.id);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn bounded_queue_rejects_overflow() {
        let model = tiny();
        // Everyone arrives at step 0: with one slot running and one
        // queued, the rest must be rejected.
        let mut reqs = trace(8);
        for r in &mut reqs {
            r.arrival_step = 0;
        }
        let cfg = ServeConfig {
            max_batch: 1,
            queue_cap: 1,
            ..ServeConfig::default()
        };
        let out = serve(&model, &reqs, &cfg, "tiny-queue");
        assert!(out.report.rejected > 0, "expected rejections");
        assert_eq!(
            out.report.completed + out.report.rejected + out.report.failed,
            out.report.offered
        );
    }

    #[test]
    fn invalid_requests_degrade_to_failed() {
        let model = tiny();
        let mut reqs = trace(3);
        reqs[0].prompt = vec![999]; // out of vocabulary
        reqs[1].prompt = vec![1; 25]; // longer than max_seq
        let out = serve(&model, &reqs, &ServeConfig::default(), "degraded");
        assert_eq!(out.report.failed, 2);
        assert_eq!(out.report.completed, 1);
        let tags: Vec<_> = out.settled.iter().map(|s| s.fate.tag()).collect();
        assert_eq!(tags, ["admission", "admission"]);
    }

    #[test]
    fn report_accounts_for_every_request() {
        let model = tiny();
        let reqs = trace(20);
        let out = serve(&model, &reqs, &ServeConfig::default(), "acct");
        let r = &out.report;
        assert_eq!(r.offered, 20);
        assert_eq!(r.completed + r.rejected + r.failed, r.offered);
        assert_eq!(r.completed as usize, out.completions.len());
        assert_eq!(
            r.tokens,
            out.completions
                .iter()
                .map(|c| c.tokens.len() as u64)
                .sum::<u64>()
        );
        assert_eq!(r.healthy_tokens, r.tokens);
        assert_eq!(r.per_token_ms.count, r.tokens);
        assert_eq!(r.ttft_ms.count, r.completed);
        assert!(r.mean_batch >= 1.0);
    }

    #[test]
    fn injected_faults_settle_sessions_with_typed_reasons() {
        let model = tiny();
        let reqs = trace(24);
        let cfg = ServeConfig {
            faults: chaos_plan(0.15, 0.1, 0.0),
            ..ServeConfig::default()
        };
        let out = serve(&model, &reqs, &cfg, "chaos");
        let r = &out.report;
        assert!(r.failed > 0, "chaos rates this high must fault someone");
        assert_eq!(
            r.completed + r.rejected + r.failed + r.shed + r.timed_out,
            r.offered
        );
        assert_eq!(r.failed as usize, out.settled.len());
        assert!(out
            .settled
            .iter()
            .all(|s| matches!(s.fate.tag(), "non_finite_logits" | "panic")));
        // Goodput only counts completed sessions' tokens.
        assert!(r.healthy_tokens <= r.tokens);
    }

    #[test]
    fn fault_sets_are_identical_across_batch_sizes_and_planes() {
        let model = tiny();
        let reqs = trace(24);
        let base = ServeConfig {
            faults: chaos_plan(0.1, 0.05, 0.1),
            deadline_steps: 2 * STALL_STEPS,
            ..ServeConfig::default()
        };
        let seq = serve_sequential(&model, &reqs, &base, "seq");
        let mut seq_settled: Vec<_> = seq.settled.clone();
        seq_settled.sort_by_key(|s| s.id);
        for max_batch in [1usize, 3, 8, 32] {
            let cfg = ServeConfig { max_batch, ..base };
            let bat = serve(&model, &reqs, &cfg, "bat");
            let mut bat_settled: Vec<_> = bat.settled.clone();
            bat_settled.sort_by_key(|s| s.id);
            assert_eq!(
                bat_settled, seq_settled,
                "settled set diverged at max_batch {max_batch}"
            );
            assert_eq!(bat.report.stream_checksum, seq.report.stream_checksum);
        }
    }

    #[test]
    fn slow_step_stalls_count_against_the_deadline() {
        let model = tiny();
        let reqs = trace(16);
        // slow-step only: no session fails, but any session that stalls
        // twice blows a 2×STALL deadline (natural steps ≤ max_seq = 24
        // can never, since 24 < 128).
        let cfg = ServeConfig {
            faults: chaos_plan(0.0, 0.0, 0.4),
            deadline_steps: 2 * STALL_STEPS,
            ..ServeConfig::default()
        };
        let out = serve(&model, &reqs, &cfg, "slow");
        let r = &out.report;
        assert!(
            r.timed_out > 0,
            "0.4 slow-step across 16 sessions must stall someone twice"
        );
        assert_eq!(r.failed, 0);
        assert_eq!(
            r.completed + r.rejected + r.failed + r.shed + r.timed_out,
            r.offered
        );
        assert!(out.settled.iter().all(|s| s.fate == SessionFate::TimedOut));
        // Completed sessions' streams are untouched by others' stalls.
        let clean = serve(&model, &reqs, &ServeConfig::default(), "clean");
        for c in &out.completions {
            let reference = clean.completions.iter().find(|r| r.id == c.id);
            assert_eq!(reference.map(|r| &r.tokens), Some(&c.tokens));
        }
    }

    #[test]
    fn shedding_and_readmission_account_exactly() {
        let model = tiny();
        // Everyone arrives at step 0 with slots scarce and admission
        // bounded: the queue holds over high-water and must shed.
        let mut reqs = trace(16);
        for r in &mut reqs {
            r.arrival_step = 0;
        }
        let cfg = ServeConfig {
            max_batch: 2,
            queue_cap: usize::MAX,
            shed_high_water: 2,
            max_admit_per_step: 1,
            readmit_delay_steps: 4,
            ..ServeConfig::default()
        };
        let out = serve(&model, &reqs, &cfg, "shed");
        let r = &out.report;
        assert!(r.shed > 0, "a 16-deep burst over high-water 2 must shed");
        assert!(r.readmitted > 0, "first sheds get a re-admission attempt");
        assert_eq!(
            r.completed + r.rejected + r.failed + r.shed + r.timed_out,
            r.offered
        );
        // Shed-settled sessions carry the typed fate.
        assert_eq!(
            out.settled
                .iter()
                .filter(|s| s.fate == SessionFate::Shed)
                .count() as u64,
            r.shed
        );
        // Whatever completed still matches the unloaded run bit-for-bit.
        let clean = serve(&model, &reqs, &ServeConfig::default(), "clean");
        for c in &out.completions {
            let reference = clean.completions.iter().find(|x| x.id == c.id);
            assert_eq!(reference.map(|x| &x.tokens), Some(&c.tokens));
        }
    }
}
