//! Serving run reports: latency percentiles, throughput, and a stream
//! checksum for bit-identity comparisons.

use lrd_trace::json::Json;
use lrd_trace::HistogramSummary;

/// The token stream one completed session produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// The originating request's id.
    pub id: usize,
    /// Generated tokens, in order.
    pub tokens: Vec<usize>,
}

/// Everything a serving run yields: the aggregate report plus the raw
/// per-session completions (for bit-identity checks against another run
/// of the same trace).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOutcome {
    /// Aggregate metrics.
    pub report: ServeReport,
    /// Completed sessions, in completion order.
    pub completions: Vec<Completion>,
}

/// Aggregate metrics of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Human label ("dense", "15%", …).
    pub label: String,
    /// Requests in the trace.
    pub offered: u64,
    /// Requests turned away by the bounded admission queue.
    pub rejected: u64,
    /// Requests that failed validation or lost their decode batch.
    pub failed: u64,
    /// Sessions that ran to completion.
    pub completed: u64,
    /// Batched decode steps executed.
    pub batches: u64,
    /// Tokens generated across all sessions.
    pub tokens: u64,
    /// Mean in-flight sessions per decode step.
    pub mean_batch: f64,
    /// Wall-clock duration of the run.
    pub wall_s: f64,
    /// Aggregate generated tokens per second.
    pub tokens_per_s: f64,
    /// Time-to-first-token distribution, milliseconds.
    pub ttft_ms: HistogramSummary,
    /// Per-token latency distribution (the wall time of the decode step
    /// that produced each token), milliseconds.
    pub per_token_ms: HistogramSummary,
    /// FNV-1a checksum over the completed token streams in request-id
    /// order; equal checksums ⇒ bit-identical streams (up to hash
    /// collision), comparable across hosts and batch sizes.
    pub stream_checksum: u64,
}

impl ServeReport {
    /// The suite/metrics JSON shape of this report (`BENCH_suite.json`
    /// schema v3 `serve.runs[]` entries).
    pub fn to_json(&self) -> Json {
        let round3 = |v: f64| (v * 1000.0).round() / 1000.0;
        Json::obj([
            ("label", Json::str(self.label.clone())),
            ("offered", Json::uint(self.offered)),
            ("rejected", Json::uint(self.rejected)),
            ("failed", Json::uint(self.failed)),
            ("completed", Json::uint(self.completed)),
            ("batches", Json::uint(self.batches)),
            ("tokens", Json::uint(self.tokens)),
            ("mean_batch", Json::num(round3(self.mean_batch))),
            ("wall_s", Json::num(round3(self.wall_s))),
            ("tokens_per_s", Json::num(round3(self.tokens_per_s))),
            ("ttft_ms", self.ttft_ms.to_json()),
            ("per_token_ms", self.per_token_ms.to_json()),
            ("stream_checksum", Json::uint(self.stream_checksum)),
        ])
    }
}

/// FNV-1a over `(id, len, tokens…)` of every completion in request-id
/// order. Completion *order* is excluded deliberately: the batched and
/// sequential servers finish sessions in different orders but must
/// produce the same streams.
pub fn stream_checksum(completions: &[Completion]) -> u64 {
    let mut by_id: Vec<&Completion> = completions.iter().collect();
    by_id.sort_by_key(|c| c.id);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for c in by_id {
        mix(c.id as u64);
        mix(c.tokens.len() as u64);
        for &t in &c.tokens {
            mix(t as u64);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comp(id: usize, tokens: &[usize]) -> Completion {
        Completion {
            id,
            tokens: tokens.to_vec(),
        }
    }

    #[test]
    fn checksum_ignores_completion_order() {
        let a = vec![comp(0, &[1, 2]), comp(1, &[3])];
        let b = vec![comp(1, &[3]), comp(0, &[1, 2])];
        assert_eq!(stream_checksum(&a), stream_checksum(&b));
    }

    #[test]
    fn checksum_sees_stream_contents_and_boundaries() {
        let a = vec![comp(0, &[1, 2]), comp(1, &[3])];
        let flipped = vec![comp(0, &[1, 3]), comp(1, &[2])];
        let moved = vec![comp(0, &[1, 2, 3]), comp(1, &[])];
        assert_ne!(stream_checksum(&a), stream_checksum(&flipped));
        assert_ne!(stream_checksum(&a), stream_checksum(&moved));
    }

    #[test]
    fn report_renders_to_json() {
        let r = ServeReport {
            label: "dense".into(),
            offered: 4,
            rejected: 1,
            failed: 0,
            completed: 3,
            batches: 10,
            tokens: 30,
            mean_batch: 2.5,
            wall_s: 0.5,
            tokens_per_s: 60.0,
            ttft_ms: lrd_trace::Histogram::new().summary(),
            per_token_ms: lrd_trace::Histogram::new().summary(),
            stream_checksum: 7,
        };
        let j = r.to_json();
        assert_eq!(j.get("label").and_then(Json::as_str), Some("dense"));
        assert_eq!(j.get("tokens_per_s").and_then(Json::as_num), Some(60.0));
        assert!(j.get("per_token_ms").and_then(|p| p.get("p99")).is_some());
    }
}
