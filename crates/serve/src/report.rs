//! Serving run reports: latency percentiles, throughput, goodput, typed
//! session fates, and a stream checksum for bit-identity comparisons.

use lrd_trace::json::Json;
use lrd_trace::HistogramSummary;

/// The token stream one completed session produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// The originating request's id.
    pub id: usize,
    /// Generated tokens, in order.
    pub tokens: Vec<usize>,
}

/// Why a session settled as [`SessionFate::Failed`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailReason {
    /// Pre-batch validation rejected the request; the string names the
    /// violated check.
    Admission(&'static str),
    /// A non-finite value surfaced in the session's logits row (a real
    /// numeric fault or an injected `nan-logits` one — the guard cannot
    /// and need not tell them apart).
    NonFiniteLogits,
    /// The session's slot panicked mid-decode and was caught by the
    /// per-slot `catch_unwind` fence; the string is the panic message.
    Panic(String),
    /// The decode kernel rejected the batch this session was packed in.
    DecodeError(String),
}

impl FailReason {
    /// Stable snake_case tag for CSV cells and JSON breakdowns.
    pub fn tag(&self) -> &'static str {
        match self {
            FailReason::Admission(_) => "admission",
            FailReason::NonFiniteLogits => "non_finite_logits",
            FailReason::Panic(_) => "panic",
            FailReason::DecodeError(_) => "decode_error",
        }
    }
}

/// Terminal state of a session that did not run to completion.
///
/// Every offered request ends in exactly one of: completed, rejected
/// (admission queue full), or one of these fates — the accounting
/// identity `completed + rejected + failed + shed + timed_out == offered`
/// is asserted by `metrics_check`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionFate {
    /// Settled with a typed failure (validation, numeric fault, panic).
    Failed(FailReason),
    /// Exceeded its virtual-time decode deadline.
    TimedOut,
    /// Pushed out of the admission queue by load shedding and not
    /// successfully re-admitted.
    Shed,
}

impl SessionFate {
    /// Stable snake_case tag for CSV cells and JSON breakdowns.
    pub fn tag(&self) -> &'static str {
        match self {
            SessionFate::Failed(r) => r.tag(),
            SessionFate::TimedOut => "timed_out",
            SessionFate::Shed => "shed",
        }
    }
}

/// One settled (non-completed, non-rejected) session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Settled {
    /// The originating request's id.
    pub id: usize,
    /// Why the session will never complete.
    pub fate: SessionFate,
}

/// Everything a serving run yields: the aggregate report, the raw
/// per-session completions (for bit-identity checks against another run
/// of the same trace), and the typed fate of every session that did not
/// complete.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOutcome {
    /// Aggregate metrics.
    pub report: ServeReport,
    /// Completed sessions, in completion order.
    pub completions: Vec<Completion>,
    /// Settled sessions, in settlement order.
    pub settled: Vec<Settled>,
}

/// Aggregate metrics of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Human label ("dense", "15%", …).
    pub label: String,
    /// Requests in the trace.
    pub offered: u64,
    /// Requests turned away by the bounded admission queue.
    pub rejected: u64,
    /// Sessions settled as [`SessionFate::Failed`] (validation, a
    /// non-finite logits row, or a quarantined slot panic).
    pub failed: u64,
    /// Sessions permanently shed by the load shedder (a shed followed by
    /// a successful re-admission does not count here).
    pub shed: u64,
    /// Sessions settled by the virtual-time decode deadline.
    pub timed_out: u64,
    /// Re-admission attempts granted to shed sessions (informational —
    /// not part of the accounting identity).
    pub readmitted: u64,
    /// Sessions that ran to completion.
    pub completed: u64,
    /// Batched decode steps executed.
    pub batches: u64,
    /// Tokens generated across all sessions.
    pub tokens: u64,
    /// Mean in-flight sessions per decode step.
    pub mean_batch: f64,
    /// Wall-clock duration of the run.
    pub wall_s: f64,
    /// Aggregate generated tokens per second.
    pub tokens_per_s: f64,
    /// Tokens that reached a *completed* session's stream — work spent on
    /// sessions that later failed or timed out is excluded.
    pub healthy_tokens: u64,
    /// Goodput: healthy tokens per second. The SLO headline — under
    /// chaos, `tokens_per_s` counts wasted decode work while this does
    /// not.
    pub goodput_tokens_per_s: f64,
    /// Time-to-first-token distribution, milliseconds.
    pub ttft_ms: HistogramSummary,
    /// Per-token latency distribution (the wall time of the decode step
    /// that produced each token), milliseconds.
    pub per_token_ms: HistogramSummary,
    /// FNV-1a checksum over the completed token streams in request-id
    /// order; equal checksums ⇒ bit-identical streams (up to hash
    /// collision), comparable across hosts and batch sizes.
    pub stream_checksum: u64,
}

impl ServeReport {
    /// The suite/metrics JSON shape of this report (`BENCH_suite.json`
    /// schema v4 `serve.runs[]` entries).
    pub fn to_json(&self) -> Json {
        let round3 = |v: f64| (v * 1000.0).round() / 1000.0;
        Json::obj([
            ("label", Json::str(self.label.clone())),
            ("offered", Json::uint(self.offered)),
            ("rejected", Json::uint(self.rejected)),
            ("failed", Json::uint(self.failed)),
            ("shed", Json::uint(self.shed)),
            ("timed_out", Json::uint(self.timed_out)),
            ("readmitted", Json::uint(self.readmitted)),
            ("completed", Json::uint(self.completed)),
            ("batches", Json::uint(self.batches)),
            ("tokens", Json::uint(self.tokens)),
            ("mean_batch", Json::num(round3(self.mean_batch))),
            ("wall_s", Json::num(round3(self.wall_s))),
            ("tokens_per_s", Json::num(round3(self.tokens_per_s))),
            ("healthy_tokens", Json::uint(self.healthy_tokens)),
            (
                "goodput_tokens_per_s",
                Json::num(round3(self.goodput_tokens_per_s)),
            ),
            ("ttft_ms", self.ttft_ms.to_json()),
            ("per_token_ms", self.per_token_ms.to_json()),
            ("stream_checksum", Json::uint(self.stream_checksum)),
        ])
    }
}

/// FNV-1a over `(id, len, tokens…)` of every completion in request-id
/// order. Completion *order* is excluded deliberately: the batched and
/// sequential servers finish sessions in different orders but must
/// produce the same streams.
pub fn stream_checksum(completions: &[Completion]) -> u64 {
    let mut by_id: Vec<&Completion> = completions.iter().collect();
    by_id.sort_by_key(|c| c.id);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for c in by_id {
        mix(c.id as u64);
        mix(c.tokens.len() as u64);
        for &t in &c.tokens {
            mix(t as u64);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comp(id: usize, tokens: &[usize]) -> Completion {
        Completion {
            id,
            tokens: tokens.to_vec(),
        }
    }

    #[test]
    fn checksum_ignores_completion_order() {
        let a = vec![comp(0, &[1, 2]), comp(1, &[3])];
        let b = vec![comp(1, &[3]), comp(0, &[1, 2])];
        assert_eq!(stream_checksum(&a), stream_checksum(&b));
    }

    #[test]
    fn checksum_sees_stream_contents_and_boundaries() {
        let a = vec![comp(0, &[1, 2]), comp(1, &[3])];
        let flipped = vec![comp(0, &[1, 3]), comp(1, &[2])];
        let moved = vec![comp(0, &[1, 2, 3]), comp(1, &[])];
        assert_ne!(stream_checksum(&a), stream_checksum(&flipped));
        assert_ne!(stream_checksum(&a), stream_checksum(&moved));
    }

    #[test]
    fn report_renders_to_json() {
        let r = ServeReport {
            label: "dense".into(),
            offered: 6,
            rejected: 1,
            failed: 1,
            shed: 1,
            timed_out: 0,
            readmitted: 1,
            completed: 3,
            batches: 10,
            tokens: 30,
            mean_batch: 2.5,
            wall_s: 0.5,
            tokens_per_s: 60.0,
            healthy_tokens: 25,
            goodput_tokens_per_s: 50.0,
            ttft_ms: lrd_trace::Histogram::new().summary(),
            per_token_ms: lrd_trace::Histogram::new().summary(),
            stream_checksum: 7,
        };
        let j = r.to_json();
        assert_eq!(j.get("label").and_then(Json::as_str), Some("dense"));
        assert_eq!(j.get("tokens_per_s").and_then(Json::as_num), Some(60.0));
        assert_eq!(j.get("shed").and_then(Json::as_num), Some(1.0));
        assert_eq!(
            j.get("goodput_tokens_per_s").and_then(Json::as_num),
            Some(50.0)
        );
        assert!(j.get("per_token_ms").and_then(|p| p.get("p99")).is_some());
    }

    #[test]
    fn fate_tags_are_stable() {
        assert_eq!(
            SessionFate::Failed(FailReason::NonFiniteLogits).tag(),
            "non_finite_logits"
        );
        assert_eq!(
            SessionFate::Failed(FailReason::Panic("boom".into())).tag(),
            "panic"
        );
        assert_eq!(
            SessionFate::Failed(FailReason::Admission("empty prompt")).tag(),
            "admission"
        );
        assert_eq!(SessionFate::TimedOut.tag(), "timed_out");
        assert_eq!(SessionFate::Shed.tag(), "shed");
    }
}
