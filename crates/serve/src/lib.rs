//! # lrd-serve
//!
//! A continuous-batching inference server that turns the paper's
//! efficiency projections (Figs. 10–12) into a *measured* dense-vs-
//! factored load test on the trained tiny-Llama. Where `lrd-hwsim`
//! predicts serving efficiency analytically, this crate actually runs
//! the decode loop under synthetic production traffic and reports the
//! latency distribution a deployment would see.
//!
//! * [`traffic`] — a deterministic workload generator: seeded Poisson
//!   inter-arrivals with periodic bursts, per-request prompt/generation
//!   lengths drawn from a seeded [`lrd_tensor::rng::Rng64`] stream.
//! * [`server`] — the serving loop. [`server::serve`] packs every
//!   in-flight session's next token into one `S × d` batch per decode
//!   step ([`lrd_nn::TransformerLm::decode_step_many`]: one batched GEMM
//!   per weight per layer per step), with bounded-queue admission
//!   control, deterministic fault injection (`lrd-core::faults`),
//!   per-session quarantine, load shedding, and virtual-time deadlines;
//!   [`server::serve_sequential`] is the one-session-at-a-time baseline
//!   on the single-step [`lrd_nn::TransformerLm::decode_step`] path,
//!   running the same fault rolls and quarantine fence.
//! * [`report`] — per-run percentile summaries (p50/p95/p99 per-token
//!   latency, TTFT), aggregate tokens/s, and an FNV-1a checksum over the
//!   produced token streams for cheap bit-identity comparison.
//! * [`clock`] — the one wall-clock read point, allowlisted by the
//!   `determinism` lint: timing feeds telemetry only, never token
//!   streams.
//!
//! Determinism contract: batch composition (which sessions are packed
//! together at each step) depends only on the request trace's virtual
//! arrival steps and on token-level progress — never on wall time — so a
//! trace replays identically on any host, and the batched token streams
//! are bit-identical to the sequential baseline (see `DESIGN.md` §13 and
//! the property tests in `tests/batched_identity.rs`). Fault rolls are
//! keyed to (seed, session id, session-local step), so the injected
//! fault set — and every healthy session's stream — is likewise
//! identical across batch sizes and queue bounds (`DESIGN.md` §15 and
//! `tests/chaos_quarantine.rs`).

pub mod clock;
pub mod report;
pub mod server;
pub mod traffic;

pub use report::{
    stream_checksum, Completion, FailReason, ServeOutcome, ServeReport, SessionFate, Settled,
};
pub use server::{argmax, serve, serve_sequential, ServeConfig, STALL_STEPS};
pub use traffic::{generate, Request, TrafficConfig};
