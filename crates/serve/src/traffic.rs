//! Deterministic synthetic traffic: the load a serving benchmark replays.
//!
//! Arrivals live in *virtual time*, measured in decode steps of the
//! serving loop rather than seconds. That choice is what makes a trace
//! reproducible: the server advances its step counter deterministically,
//! so "request 17 arrives at step 203" means the same thing on every
//! host and at every batch size, whereas wall-clock arrivals would shift
//! batch composition with machine speed.
//!
//! The arrival process is Poisson (exponential inter-arrival gaps drawn
//! from a seeded [`Rng64`]) overlaid with periodic bursts — every
//! `burst_every`-th request anchors a burst whose following
//! `burst_size − 1` requests arrive at the same step, modelling the
//! correlated request spikes that stress admission control.

use lrd_tensor::rng::Rng64;

/// One serving request: a prompt to prefill and a number of tokens to
/// generate, arriving at a virtual decode step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Stable id (the order of generation); completions are keyed by it.
    pub id: usize,
    /// Virtual arrival time, in decode-loop steps.
    pub arrival_step: u64,
    /// Prompt tokens to prefill.
    pub prompt: Vec<usize>,
    /// Number of tokens to generate after the prompt.
    pub gen_len: usize,
}

/// Parameters of the synthetic workload.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficConfig {
    /// Number of requests to generate.
    pub sessions: usize,
    /// Seed of the whole trace; two configs with equal fields generate
    /// identical traces.
    pub seed: u64,
    /// Mean exponential inter-arrival gap, in decode steps.
    pub mean_interarrival_steps: f64,
    /// Every `burst_every`-th request anchors a burst (0 disables bursts).
    pub burst_every: usize,
    /// Requests per burst, including the anchor.
    pub burst_size: usize,
    /// Inclusive `(lo, hi)` range of prompt lengths.
    pub prompt_len: (usize, usize),
    /// Inclusive `(lo, hi)` range of generation lengths.
    pub gen_len: (usize, usize),
    /// Vocabulary to draw prompt tokens from.
    pub vocab: usize,
}

impl TrafficConfig {
    /// A workload sized for a model with the given vocabulary and
    /// context window: prompts fill up to a quarter of the window and
    /// generation targets fit the remainder, so no request can overflow
    /// its KV cache.
    pub fn for_model(sessions: usize, seed: u64, vocab: usize, max_seq: usize) -> TrafficConfig {
        let prompt_hi = (max_seq / 4).max(2);
        let gen_hi = max_seq.saturating_sub(prompt_hi).max(2);
        TrafficConfig {
            sessions,
            seed,
            mean_interarrival_steps: 4.0,
            burst_every: 8,
            burst_size: 4,
            prompt_len: (2, prompt_hi),
            gen_len: (4, gen_hi),
            vocab,
        }
    }
}

/// Inclusive-range sample; degenerate ranges collapse to `lo`.
fn sample_range(rng: &mut Rng64, (lo, hi): (usize, usize)) -> usize {
    if hi <= lo {
        lo
    } else {
        lo + rng.below(hi - lo + 1)
    }
}

/// Generates the request trace for `cfg`, sorted by arrival step.
///
/// The trace is a pure function of `cfg`: a seeded Poisson arrival
/// process with bursts, prompts drawn uniformly from `[0, vocab)`.
pub fn generate(cfg: &TrafficConfig) -> Vec<Request> {
    let mut rng = Rng64::new(cfg.seed);
    let mut t = 0.0f64;
    let mut burst_left = 0usize;
    let mut out = Vec::with_capacity(cfg.sessions);
    for id in 0..cfg.sessions {
        if burst_left > 0 {
            // Burst member: arrives with its anchor, no gap.
            burst_left -= 1;
        } else {
            // `1 - u` keeps the argument of ln strictly positive.
            let u = rng.uniform();
            t += -cfg.mean_interarrival_steps * (1.0 - u).ln();
            if cfg.burst_every > 0 && cfg.burst_size > 1 && (id + 1) % cfg.burst_every == 0 {
                burst_left = cfg.burst_size - 1;
            }
        }
        let plen = sample_range(&mut rng, cfg.prompt_len).max(1);
        let gen_len = sample_range(&mut rng, cfg.gen_len).max(1);
        let prompt = (0..plen).map(|_| rng.below(cfg.vocab.max(1))).collect();
        out.push(Request {
            id,
            arrival_step: t as u64,
            prompt,
            gen_len,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TrafficConfig {
        TrafficConfig::for_model(64, 42, 256, 64)
    }

    #[test]
    fn trace_is_deterministic() {
        assert_eq!(generate(&cfg()), generate(&cfg()));
    }

    #[test]
    fn different_seeds_differ() {
        let mut other = cfg();
        other.seed ^= 1;
        assert_ne!(generate(&cfg()), generate(&other));
    }

    #[test]
    fn arrivals_are_sorted_and_lengths_in_range() {
        let c = cfg();
        let trace = generate(&c);
        assert_eq!(trace.len(), c.sessions);
        let mut last = 0u64;
        for r in &trace {
            assert!(r.arrival_step >= last, "arrivals must be monotone");
            last = r.arrival_step;
            assert!((c.prompt_len.0..=c.prompt_len.1).contains(&r.prompt.len()));
            assert!((c.gen_len.0..=c.gen_len.1).contains(&r.gen_len));
            assert!(
                r.prompt.len() + r.gen_len <= 64,
                "request overflows the window"
            );
            assert!(r.prompt.iter().all(|&t| t < c.vocab));
        }
    }

    #[test]
    fn bursts_share_an_arrival_step() {
        let c = cfg();
        let trace = generate(&c);
        // Request 8 anchors the first burst: 8..12 arrive together.
        let anchor = trace[c.burst_every - 1].arrival_step;
        for r in &trace[c.burst_every - 1..c.burst_every - 1 + c.burst_size] {
            assert_eq!(r.arrival_step, anchor);
        }
    }
}
