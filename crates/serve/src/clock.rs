//! The serving wall clock — the crate's single ambient-time read point.
//!
//! Allowlisted by the `determinism` lint: every duration the server
//! records (per-token latency, TTFT, run wall time) flows through this
//! module, and those values are telemetry-only — admission, batch
//! packing, and token selection are pure functions of the request trace
//! and model weights, so the clock can never perturb a result stream.

/// A monotonic stopwatch started at construction.
#[derive(Debug, Clone, Copy)]
pub struct Clock {
    start: std::time::Instant,
}

impl Clock {
    /// Starts the stopwatch.
    pub fn start() -> Clock {
        Clock {
            start: std::time::Instant::now(),
        }
    }

    /// Seconds elapsed since [`Clock::start`].
    pub fn seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let c = Clock::start();
        let a = c.seconds();
        let b = c.seconds();
        assert!(b >= a);
        assert!(a >= 0.0);
    }
}
