//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors a minimal, API-compatible implementation: the
//! `proptest!` macro, `Strategy` with `prop_map`, `any::<T>()`, integer
//! range strategies, tuple composition, `collection::btree_set`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream, by design:
//!
//! * no shrinking — a failing case reports its case index and seed so it
//!   can be replayed, but is not minimized;
//! * generation is fully deterministic: case `i` of test `t` derives its
//!   RNG from `hash(module_path::t) ^ f(i)`, so failures reproduce across
//!   runs and machines without a persistence file.

pub mod test_runner {
    /// Per-test configuration; only `cases` is honored.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The property was violated.
        Fail(String),
        /// The case was rejected by `prop_assume!` (not a failure).
        Reject(String),
    }

    /// The result type the `proptest!` macro wraps each case body in.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// SplitMix64 generator seeded from the test name and case index.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// RNG for case `case` of the test named `name`.
        pub fn deterministic(name: &str, case: u32) -> Self {
            // FNV-1a over the fully qualified test name.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(h ^ (u64::from(case) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; 0 when `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    /// Strategy adapter returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, i64);

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy over a type's whole domain, see [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// Accepted size specifications for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    /// Strategy yielding a `BTreeSet` of `element` draws, see [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = self.size.max_exclusive.saturating_sub(self.size.min).max(1) as u64;
            let target = self.size.min + rng.below(span) as usize;
            let mut out = BTreeSet::new();
            // The element domain may be smaller than the target size; cap
            // the insertion attempts so generation always terminates.
            for _ in 0..target.saturating_mul(20).max(20) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }

    /// A `BTreeSet` strategy with `size` elements drawn from `element`.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy yielding a `Vec` of `element` draws, see [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max_exclusive.saturating_sub(self.size.min).max(1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` strategy with a `size`-drawn length, elements from
    /// `element`. Unlike [`btree_set`], duplicates are kept.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// item expands to a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let test_name = concat!(module_path!(), "::", stringify!($name));
                for case in 0..cfg.cases {
                    let mut proptest_rng =
                        $crate::test_runner::TestRng::deterministic(test_name, case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut proptest_rng,
                        );
                    )+
                    let outcome: $crate::test_runner::TestCaseResult =
                        (|| -> $crate::test_runner::TestCaseResult {
                            $body
                            Ok(())
                        })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject(_)) => continue,
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {case} of {test_name} failed: {msg}")
                        }
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs == rhs, "{:?} != {:?}", lhs, rhs);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs == rhs, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs != rhs, "{:?} == {:?}", lhs, rhs);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs != rhs, $($fmt)*);
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn deterministic_rng_reproduces() {
        let mut a = TestRng::deterministic("x", 3);
        let mut b = TestRng::deterministic("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("x", 4);
        assert_ne!(TestRng::deterministic("x", 3).next_u64(), c.next_u64());
    }

    #[test]
    fn range_strategies_stay_in_bounds() {
        let mut rng = TestRng::deterministic("bounds", 0);
        for _ in 0..200 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (1usize..=4).generate(&mut rng);
            assert!((1..=4).contains(&w));
        }
    }

    #[test]
    fn btree_set_respects_size() {
        let mut rng = TestRng::deterministic("set", 0);
        for _ in 0..50 {
            let s = crate::collection::btree_set(0usize..32, 1..6).generate(&mut rng);
            assert!((1..6).contains(&s.len()), "len {}", s.len());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_runs_and_asserts(a in 0usize..10, b in any::<u64>()) {
            prop_assume!(a != 11); // never rejects
            prop_assert!(a < 10, "a = {a}");
            prop_assert_eq!(a, a);
            prop_assert_ne!(b ^ 1, b);
        }
    }
}
