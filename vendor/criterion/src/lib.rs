//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal, API-compatible benchmark runner: `criterion_group!` /
//! `criterion_main!`, `Criterion::bench_function`, benchmark groups with
//! `bench_with_input` / `throughput`, and `Bencher::iter` /
//! `iter_batched`.
//!
//! Timing model: each benchmark warms up briefly, then runs batches of
//! iterations until it has accumulated `MEASURE_TARGET` of wall time (or a
//! hard iteration cap), and reports the mean per-iteration time. There is
//! no statistical analysis, HTML report, or state persistence.

use std::time::{Duration, Instant};

const WARMUP_ITERS: u64 = 3;
const MEASURE_TARGET: Duration = Duration::from_millis(200);
const MAX_ITERS: u64 = 10_000;

/// How a group scales reported per-iteration numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes its setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-run setup for every iteration.
    PerIteration,
}

/// A benchmark identifier, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Mean per-iteration time of the last `iter*` call.
    last_mean: Duration,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            last_mean: Duration::ZERO,
        }
    }

    /// Times `routine` over repeated iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(routine());
        }
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        while elapsed < MEASURE_TARGET && iters < MAX_ITERS {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            elapsed += t0.elapsed();
            iters += 1;
        }
        self.last_mean = elapsed / iters.max(1) as u32;
    }

    /// Times `routine` with a fresh `setup()` input per iteration; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(routine(setup()));
        }
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        while elapsed < MEASURE_TARGET && iters < MAX_ITERS {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            elapsed += t0.elapsed();
            iters += 1;
        }
        self.last_mean = elapsed / iters.max(1) as u32;
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn report(label: &str, mean: Duration, throughput: Option<Throughput>) {
    let mut line = format!("{label:<50} time: {:>12}", format_duration(mean));
    if let Some(tp) = throughput {
        let secs = mean.as_secs_f64().max(1e-12);
        match tp {
            Throughput::Elements(n) => {
                line.push_str(&format!("  thrpt: {:.3} Melem/s", n as f64 / secs / 1e6));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!(
                    "  thrpt: {:.3} MiB/s",
                    n as f64 / secs / (1 << 20) as f64
                ));
            }
        }
    }
    println!("{line}");
}

/// The benchmark runner.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        report(name, b.last_mean, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new();
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.label),
            b.last_mean,
            self.throughput,
        );
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher::new();
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.label),
            b.last_mean,
            self.throughput,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Re-export for call sites that use `criterion::black_box`.
pub use std::hint::black_box;

/// Bundles benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits a `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_nonzero_time() {
        let mut c = Criterion::default();
        c.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::from_parameter(1), &1u32, |b, &x| {
            b.iter_batched(|| x, |v| v + 1, BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter(7).label, "7");
        assert_eq!(BenchmarkId::from("x").label, "x");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(5)), "5 ns");
        assert!(format_duration(Duration::from_micros(5)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(5)).ends_with(" s"));
    }
}
