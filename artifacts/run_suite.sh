#!/bin/bash
cd /root/repo
BIN=target/release/repro
: > artifacts/suite.log
for cmd in fig3 fig5 fig6 fig7 fig8 fig9 spectra decode baselines recovery bert; do
  echo "### RUNNING $cmd" >> artifacts/suite.log
  $BIN $cmd --samples 100 >> artifacts/suite.log 2>&1
done
echo SUITE_COMPLETE >> artifacts/suite.log
