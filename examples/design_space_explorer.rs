//! Explore the decomposition design space analytically: Theorem 3.2 sizes,
//! configuration validity, and the parameter reduction of every Table 4
//! preset — no training required, instant.
//!
//! ```sh
//! cargo run --release --example design_space_explorer
//! ```

use lrd_core::compression::{param_reduction_pct, tensor_compression_ratio};
use lrd_core::select::{preset_config, table4_presets};
use lrd_core::space::{design_space_size, table2, DecompositionConfig};
use lrd_models::zoo::llama2_7b;
use lrd_tensor::tucker::break_even_rank;

fn main() {
    println!("== Table 2: design-space sizes (Theorem 3.2) ==");
    for row in table2() {
        println!(
            "  {:<11} layers={:<3} tensors={}  scale={}  exact={:.3e}",
            row.model, row.n_layers, row.n_tensors, row.scale, row.scale.exact as f64
        );
    }

    let desc = llama2_7b();
    println!("\n== Llama2-7B: {} ==", design_space_size(&desc));

    println!("\n== per-tensor compression at rank 1 ==");
    for t in desc.layer_tensors() {
        println!(
            "  {:<7} {:>5}x{:<5} ratio {:>7.1}x  break-even rank {:.0}",
            t.name,
            t.rows,
            t.cols,
            tensor_compression_ratio(t.rows, t.cols, 1),
            break_even_rank(t.rows, t.cols),
        );
    }

    println!("\n== Table 4 presets (rank 1, all tensors) ==");
    for (label, published, layers) in table4_presets() {
        let cfg = preset_config(&layers);
        println!(
            "  target {label:<4} computed {:.1}%  ({} layers)",
            param_reduction_pct(&desc, &cfg),
            layers.len()
        );
        assert!(cfg.validate(&desc).is_ok());
        let _ = published;
    }

    // Validity demonstrations.
    println!("\n== validity (Proposition 3.1) ==");
    let bad = DecompositionConfig::uniform(&[99], &[0], 1);
    println!("  layers=[99]: {:?}", bad.validate(&desc).unwrap_err());
    let bad_rank = DecompositionConfig::uniform(&[0], &[0], 5000);
    println!("  rank=5000:   {:?}", bad_rank.validate(&desc).unwrap_err());
}
