//! §6 future work in miniature: train a small model, decompose it
//! aggressively, then recover accuracy with a short fine-tuning run on the
//! factored weights.
//!
//! ```sh
//! cargo run --release --example finetune_recovery
//! ```

use lrd_core::decompose::decompose_model;
use lrd_core::recovery::{recover, RecoveryOptions};
use lrd_core::space::DecompositionConfig;
use lrd_eval::corpus::CorpusBuilder;
use lrd_eval::harness::{evaluate, EvalOptions};
use lrd_eval::tasks::ArcEasy;
use lrd_eval::World;
use lrd_nn::train::{TrainConfig, Trainer};
use lrd_nn::{ArchKind, TransformerConfig, TransformerLm};
use lrd_tensor::rng::Rng64;

fn main() {
    let world = World::new(5);
    let cfg = TransformerConfig {
        kind: ArchKind::Decoder,
        vocab_size: 256,
        d_model: 32,
        n_layers: 6,
        n_heads: 4,
        n_kv_heads: 4,
        d_ff: 96,
        max_seq: 64,
    };
    let mut model = TransformerLm::new(cfg, &mut Rng64::new(11));

    // Pre-train briefly on the world's corpus.
    println!("pre-training 400 steps…");
    let mut corpus = CorpusBuilder::new(world, 1, 48);
    let mut trainer = Trainer::new(TrainConfig {
        lr: 4e-3,
        warmup: 20,
        total_steps: 400,
        clip: 1.0,
        weight_decay: 0.01,
    });
    for step in 0..400 {
        let loss = trainer.step(&mut model, &corpus.batch(12));
        if step % 100 == 0 {
            println!("  step {step:>3} loss {loss:.3}");
        }
    }

    let opts = EvalOptions {
        n_samples: 150,
        seed: 2,
        batch_size: 64,
        threads: 0,
    };
    let acc = |m: &TransformerLm| evaluate(m, &ArcEasy, &world, &opts).percent();
    let base_acc = acc(&model);
    println!("baseline ARC-Easy accuracy: {base_acc:.1}%");

    // Decompose aggressively: rank 1, all tensors, half the layers.
    let gamma = DecompositionConfig::uniform(&[1, 3, 5], &[0, 1, 2, 3, 4, 5, 6], 1);
    let report = decompose_model(&mut model, &gamma).expect("decompose");
    let decomposed_acc = acc(&model);
    println!(
        "after {:.1}% parameter reduction: {decomposed_acc:.1}% (mean tensor error {:.2})",
        report.reduction_pct(),
        report.mean_error()
    );

    // Recover with one short epoch of fine-tuning on the factored weights.
    let rec = recover(
        &mut model,
        &world,
        &RecoveryOptions {
            steps: 200,
            batch: 12,
            lr: 1e-3,
            seq_len: 48,
            corpus_seed: 77,
        },
    );
    let recovered_acc = acc(&model);
    println!(
        "after recovery ({} steps, loss {:.3} -> {:.3}): {recovered_acc:.1}%",
        rec.steps, rec.loss_before, rec.loss_after
    );
    println!(
        "recovered {:.1} of the {:.1} accuracy points lost",
        recovered_acc - decomposed_acc,
        base_acc - decomposed_acc
    );
}
