//! Profile the simulated 4×A100 node: latency, power trace, energy and
//! memory for dense vs decomposed Llama2-7B — the instrument behind
//! Figs. 10–12.
//!
//! ```sh
//! cargo run --release --example energy_profiler
//! ```

use lrd_core::decompose::descriptor_decomposition;
use lrd_core::select::{preset_config, table4_presets};
use lrd_hwsim::device::SystemSpec;
use lrd_hwsim::energy::PowerTrace;
use lrd_hwsim::report::simulate_inference;
use lrd_models::zoo::llama2_7b;

fn main() {
    let system = SystemSpec::quad_a100();
    let desc = llama2_7b();
    let (batch, seq) = (64, 128);

    let dense = simulate_inference(&system, &desc, &[], batch, seq);
    println!("== dense Llama2-7B, batch/GPU {batch}, seq {seq} ==");
    println!("  gpu time   {:>8.4} s/batch", dense.gpu_time_s);
    println!("  wall time  {:>8.4} s/batch", dense.wall_time_s);
    println!("  energy     {:>8.0} J/batch", dense.energy_j);
    println!(
        "  memory     {:>8.1} GB/GPU (weights {:.1} + act {:.1} + kv {:.1} + fw {:.1})",
        dense.memory.total() as f64 / 1e9,
        dense.memory.weights as f64 / 1e9,
        dense.memory.activations as f64 / 1e9,
        dense.memory.kv_cache as f64 / 1e9,
        dense.memory.framework as f64 / 1e9,
    );
    println!("  throughput {:>8.1} samples/s", dense.throughput);

    // nvidia-smi style power trace of one batch.
    let trace = PowerTrace::sample_run(&system, dense.wall_time_s, 0.2, 0.05);
    println!(
        "\n  power trace: {} samples, mean {:.0} W, integral {:.0} J",
        trace.samples().len(),
        trace.mean_power_w(),
        trace.energy_j()
    );

    println!("\n== decomposed presets ==");
    for (label, _, layers) in table4_presets() {
        let decomp = descriptor_decomposition(&desc, &preset_config(&layers));
        let r = simulate_inference(&system, &desc, &decomp, batch, seq);
        println!(
            "  {label:>4}: wall {:.4} s ({:+.1}%), energy {:.0} J ({:+.1}%), mem {:.1} GB ({:+.1}%)",
            r.wall_time_s,
            100.0 * (r.wall_time_s / dense.wall_time_s - 1.0),
            r.energy_j,
            100.0 * (r.energy_j / dense.energy_j - 1.0),
            r.memory.total() as f64 / 1e9,
            100.0 * (r.memory.total() as f64 / dense.memory.total() as f64 - 1.0),
        );
    }
}
