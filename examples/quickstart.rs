//! Quickstart: factor a transformer's weights with rank-pruned Tucker
//! decomposition and inspect the accuracy-relevant error and the size
//! savings.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lrd_core::decompose::decompose_model;
use lrd_core::space::DecompositionConfig;
use lrd_eval::harness::{evaluate, EvalOptions};
use lrd_eval::tasks::ArcEasy;
use lrd_eval::World;
use lrd_nn::{ArchKind, TransformerConfig, TransformerLm};
use lrd_tensor::rng::Rng64;
use lrd_tensor::tucker::tucker2;
use lrd_tensor::Tensor;

fn main() {
    // 1. Tucker-2 on a single matrix: T(n1,n2) ≈ U1 · Γ · U2.
    let mut rng = Rng64::new(42);
    let w = Tensor::randn(&[64, 48], &mut rng);
    for rank in [1usize, 4, 16, 48] {
        let fac = tucker2(&w, rank).expect("decompose");
        println!(
            "rank {rank:>2}: {:>4} params (dense {}), compression {:.1}x, rel. error {:.3}",
            fac.param_count(),
            w.len(),
            fac.compression_ratio(),
            fac.relative_error(&w),
        );
    }

    // 2. Whole-model decomposition: rank-1, all seven tensors, two layers.
    let cfg = TransformerConfig {
        kind: ArchKind::Decoder,
        vocab_size: 256,
        d_model: 32,
        n_layers: 8,
        n_heads: 4,
        n_kv_heads: 4,
        d_ff: 96,
        max_seq: 64,
    };
    let mut model = TransformerLm::new(cfg, &mut Rng64::new(7));
    let gamma = DecompositionConfig::uniform(&[2, 5], &[0, 1, 2, 3, 4, 5, 6], 1);
    let report = decompose_model(&mut model, &gamma).expect("decompose model");
    println!(
        "\nmodel: {} -> {} params ({:.1}% reduction), mean tensor error {:.3}",
        report.params_before,
        report.params_after,
        report.reduction_pct(),
        report.mean_error(),
    );

    // 3. The decomposed model still runs end to end.
    let world = World::new(1);
    let acc = evaluate(
        &model,
        &ArcEasy,
        &world,
        &EvalOptions {
            n_samples: 40,
            seed: 3,
            batch_size: 32,
            threads: 0,
        },
    );
    println!("untrained decomposed model on ARC-Easy: {acc} (chance is 25%)");
}
