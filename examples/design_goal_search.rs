//! Definition 1 in action: search the decomposition design space for the
//! minimum energy–delay-product configuration under an accuracy-drop
//! tolerance, using a Fig. 7-shaped sensitivity profile and the simulated
//! 4×A100 node. Runs instantly (no training).
//!
//! ```sh
//! cargo run --release --example design_goal_search
//! ```

use lrd_core::search::{greedy_search, random_search, SensitivityModel};
use lrd_hwsim::device::SystemSpec;
use lrd_models::zoo::llama2_7b;

fn main() {
    let system = SystemSpec::quad_a100();
    let desc = llama2_7b();

    // Sensitivity profile shaped like the paper's Fig. 7: the first two and
    // last layers are expensive to decompose, the middle is cheap.
    let drops: Vec<f64> = (0..desc.n_layers)
        .map(|l| {
            let edge = l.min(desc.n_layers - 1 - l);
            match edge {
                0 => 7.0,
                1 => 3.5,
                _ => 0.6,
            }
        })
        .collect();
    let sens = SensitivityModel::new(drops);

    println!("τ (%p) | layers | param-red % | pred. drop | EDP (J·s) | vs random");
    for tau in [2.0, 5.0, 10.0, 20.0, 40.0] {
        let greedy = greedy_search(&system, &desc, &sens, tau, 64, 128);
        let random = random_search(&system, &desc, &sens, tau, 40, 11, 64, 128);
        match (greedy, random) {
            (Some(g), Some(r)) => println!(
                "{tau:>6} | {:>6} | {:>11.1} | {:>10.1} | {:>9.1} | {:+.1}%",
                g.layers.len(),
                g.param_reduction_pct,
                g.predicted_drop,
                g.edp,
                100.0 * (g.edp / r.edp - 1.0),
            ),
            (Some(g), None) => println!(
                "{tau:>6} | {:>6} | {:>11.1} | {:>10.1} | {:>9.1} | (random infeasible)",
                g.layers.len(),
                g.param_reduction_pct,
                g.predicted_drop,
                g.edp,
            ),
            _ => println!("{tau:>6} | infeasible"),
        }
    }
}
